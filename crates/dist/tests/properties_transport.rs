//! Transport battery: TCP determinism + fault injection + worker
//! lifecycle.
//!
//! The invariants under test, mirroring `properties_dist.rs` for the
//! second transport:
//!
//! * `profile_dirs_distributed` over the **TCP** backend (real
//!   `affidavit-worker --connect` child processes) renders a profile
//!   byte-identical to the single-process `profile_dirs` at every worker
//!   count, for both paper configurations — including under aggressive
//!   straggler-requeue pressure.
//! * A TCP worker killed mid-job loses nothing: its lease expires on the
//!   coordinator, the job is re-published, another worker completes it,
//!   and the final report is byte-identical to the local search.
//! * `affidavit-worker` exits with the distinct broker-lost code (3)
//!   when its broker — spool directory or coordinator socket —
//!   disappears for good, after a bounded reconnect.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use affidavit_blocking::Blocking;
use affidavit_core::profiling::{profile_dirs, ProfileOptions, SnapshotProfile};
use affidavit_core::report::render_report;
use affidavit_core::state::{Assignment, SearchState};
use affidavit_core::{
    expand_portable, Affidavit, AffidavitConfig, ExpansionRequest, ProblemInstance,
};
use affidavit_datagen::blueprint::{Blueprint, GenConfig};
use affidavit_datasets::synth::generate_rows;
use affidavit_dist::wire::{instance_digest, WireExpansion, WireExpansionResult, WireInstanceSpec};
use affidavit_dist::{
    absorb_result, profile_dirs_distributed, spawn_workers, Broker, DistBackend, DistOptions, Job,
    JobOutcome, JobPayload, JobQueue, TcpBroker, TcpClient, Transport, WireInstance,
    WorkerEndpoint, BROKER_LOST_EXIT_CODE,
};
use affidavit_table::{csv, RecordId, Schema, Table, ValuePool};

/// Build a pair of snapshot directories: three synthetically transformed
/// tables, one unchanged table, one dropped, one created, one malformed
/// (failure-semantics parity between the local and distributed paths).
fn make_snapshot_dirs(root: &Path, seed: u64) -> (PathBuf, PathBuf) {
    let before = root.join("before");
    let after = root.join("after");
    std::fs::create_dir_all(&before).unwrap();
    std::fs::create_dir_all(&after).unwrap();

    for (i, spec_name) in ["iris", "adult", "balance"].iter().enumerate() {
        let spec = affidavit_datasets::by_name(spec_name).expect("dataset exists");
        let s = seed + i as u64;
        let (base, pool) = generate_rows(&spec, spec.rows.min(40), s);
        let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, s)).materialize_full();
        let name = format!("{spec_name}_{i}");
        for (dir, table) in [
            (&before, &generated.instance.source),
            (&after, &generated.instance.target),
        ] {
            csv::write_path(
                dir.join(format!("{name}.csv")),
                table,
                &generated.instance.pool,
                csv::CsvOptions::default(),
            )
            .unwrap();
        }
    }
    let unchanged = "x,y\n1,a\n2,b\n3,c\n";
    std::fs::write(before.join("static.csv"), unchanged).unwrap();
    std::fs::write(after.join("static.csv"), unchanged).unwrap();
    std::fs::write(before.join("dropped.csv"), "a\n1\n").unwrap();
    std::fs::write(after.join("created.csv"), "a\n1\n").unwrap();
    std::fs::write(before.join("broken.csv"), "a,b\n1,2\n").unwrap();
    std::fs::write(after.join("broken.csv"), "a,b\n1\n").unwrap();
    (before, after)
}

/// Canonical bytes of a profile: timing stripped, rendered report plus
/// the machine-readable JSON (both output surfaces pinned).
fn canonical(mut profile: SnapshotProfile) -> String {
    profile.strip_timing();
    format!("{}\n===\n{}", profile.render(), profile.to_json())
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_affidavit-worker"))
}

fn tcp_options(workers: usize) -> DistOptions {
    DistOptions {
        workers,
        backend: DistBackend::Tcp {
            listen: None,
            worker_bin: Some(worker_bin()),
        },
        ..DistOptions::default()
    }
}

#[test]
fn tcp_workers_are_byte_identical_to_local() {
    let root = std::env::temp_dir().join("affidavit-transport-battery-tcp");
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = make_snapshot_dirs(&root, 0x7C9);

    for (config_name, config) in [
        ("paper_id", AffidavitConfig::paper_id()),
        ("paper_overlap", AffidavitConfig::paper_overlap()),
    ] {
        let popts = ProfileOptions {
            config,
            ..ProfileOptions::default()
        };
        let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
        assert!(
            local.contains("FAILED") && local.contains("dropped in target"),
            "the battery must exercise failure and missing-table paths:\n{local}"
        );
        for workers in [1usize, 2, 4] {
            let (profile, stats) =
                profile_dirs_distributed(&before, &after, &popts, &tcp_options(workers)).unwrap();
            assert_eq!(stats.jobs, 4, "three transformed tables + one static");
            assert_eq!(stats.conflicts, 0);
            assert!(
                stats.steals >= stats.jobs,
                "every job is claimed at least once: {stats:?}"
            );
            assert_eq!(
                canonical(profile),
                local,
                "tcp/{config_name}: workers={workers} diverged from the single-process run"
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn tcp_workers_survive_straggler_requeue_pressure() {
    // An aggressive steal timeout forces lease expirations of healthy
    // in-flight claims; the duplicated completions must be discarded
    // cleanly and the report must not move.
    let root = std::env::temp_dir().join("affidavit-transport-battery-steal");
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = make_snapshot_dirs(&root, 0x7CA);
    let popts = ProfileOptions::default();
    let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
    let dopts = DistOptions {
        steal_timeout: Duration::from_millis(1),
        ..tcp_options(2)
    };
    let (profile, stats) = profile_dirs_distributed(&before, &after, &popts, &dopts).unwrap();
    assert_eq!(canonical(profile), local);
    assert_eq!(stats.conflicts, 0, "{stats:?}");
    std::fs::remove_dir_all(&root).ok();
}

/// One real (non-trivial) search job plus the instance it came from.
fn search_job(id: u64) -> (ProblemInstance, Job) {
    let mut pool = ValuePool::new();
    let source = Table::from_rows(
        Schema::new(["k", "v", "unit"]),
        &mut pool,
        (0..60).map(|i| vec![format!("k{i}"), format!("{}", (i + 1) * 1000), "USD".into()]),
    );
    let target = Table::from_rows(
        Schema::new(["k", "v", "unit"]),
        &mut pool,
        (0..60).map(|i| vec![format!("k{i}"), format!("{}", i + 1), "k $".into()]),
    );
    let instance = ProblemInstance::new(source, target, pool).unwrap();
    let job = Job {
        id,
        name: "fault-injection".to_owned(),
        payload: JobPayload::Explain {
            instance: WireInstance::from_instance(&instance),
            config: AffidavitConfig::paper_id(),
        },
    };
    (instance, job)
}

#[test]
fn killed_tcp_worker_lease_expires_and_the_job_is_republished() {
    let (mut instance, job) = search_job(0);
    let base_len = instance.pool.len();

    // The reference: the same search, run locally.
    let local_report = {
        let mut local = instance.clone();
        let outcome = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut local);
        render_report(&outcome.explanation, &local)
    };

    let coordinator = Broker::new(TcpBroker::bind("127.0.0.1:0").unwrap());
    let addr = coordinator.transport().local_addr().to_string();
    coordinator.submit(&job).unwrap();

    // A worker claims the job and dies mid-job. The doomed worker is a
    // bare TcpClient that simply never delivers — from the coordinator's
    // perspective indistinguishable from a killed process, since each
    // steal is its own connection.
    let ghost = Broker::new(TcpClient::new(addr.clone()));
    assert_eq!(ghost.steal("ghost").unwrap().unwrap().id, 0);
    assert_eq!(coordinator.transport().active_leases(), 1);
    assert!(coordinator.fetch_result(0).unwrap().is_none());

    // The lease expires (zero timeout = immediately) and the job is
    // re-published — exactly once.
    assert_eq!(
        coordinator
            .transport()
            .requeue_expired(Duration::ZERO)
            .unwrap(),
        1
    );
    assert_eq!(
        coordinator
            .transport()
            .requeue_expired(Duration::ZERO)
            .unwrap(),
        0
    );

    // Escalate to a real process kill: a child claims the re-published
    // copy and is SIGKILLed. Whether the kill lands before or after its
    // delivery, the protocol must converge on the same bytes.
    let mut doomed = spawn_workers(
        &worker_bin(),
        &WorkerEndpoint::Tcp(addr.clone()),
        1,
        Duration::from_millis(1),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while coordinator.stats().unwrap().steals < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(
        coordinator.stats().unwrap().steals >= 2,
        "child never stole"
    );
    doomed[0].kill();
    drop(doomed);

    // If the kill landed mid-job, the child's lease expires too and a
    // healthy worker picks the job up; if the child won the race, the
    // result is already in. Either way: same final bytes.
    if coordinator.fetch_result(0).unwrap().is_none() {
        assert_eq!(
            coordinator
                .transport()
                .requeue_expired(Duration::ZERO)
                .unwrap(),
            1,
            "the killed child's lease must expire"
        );
        let healthy = spawn_workers(
            &worker_bin(),
            &WorkerEndpoint::Tcp(addr),
            1,
            Duration::from_millis(1),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        while coordinator.fetch_result(0).unwrap().is_none() {
            assert!(Instant::now() < deadline, "healthy worker never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }
        coordinator.request_shutdown().unwrap();
        drop(healthy);
    } else {
        coordinator.request_shutdown().unwrap();
    }

    coordinator.check_health().unwrap();
    let result = coordinator.fetch_result(0).unwrap().unwrap();
    let remote = absorb_result(&mut instance, base_len, &result, true).unwrap();
    assert_eq!(
        render_report(&remote.explanation, &instance),
        local_report,
        "the report after fault injection must be byte-identical to the local run"
    );
    let stats = coordinator.stats().unwrap();
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.conflicts, 0, "{stats:?}");
}

/// One real (multi-request) expansion-job lease plus the expansion
/// results a healthy worker must produce for it, computed locally.
fn expansion_job(id: u64) -> (Job, String) {
    let (instance, _) = search_job(id);
    let root = std::sync::Arc::new(Blocking::root(&instance.source, &instance.target));
    let state = |sid: usize| SearchState {
        assignments: vec![Assignment::Undecided; 3],
        blocking: root.clone(),
        cost: 0.0,
        id: sid,
        parent: None,
    };
    let requests = [
        ExpansionRequest {
            state: state(0),
            alignment: vec![
                (RecordId(0), RecordId(0)),
                (RecordId(1), RecordId(1)),
                (RecordId(2), RecordId(2)),
            ],
        },
        ExpansionRequest {
            state: state(1),
            alignment: vec![(RecordId(3), RecordId(3)), (RecordId(4), RecordId(4))],
        },
    ];
    // The reference: what phase 1 computes for this batch locally. The
    // worker pins threads = 1 internally, but expansion is pure at every
    // thread count, so the un-pinned config is the honest comparison.
    let config = AffidavitConfig::paper_id();
    let expected: Vec<_> = requests
        .iter()
        .map(|r| WireExpansionResult::from_portable(&expand_portable(&instance, &config, r)))
        .collect();
    let job = Job {
        id,
        name: "expansion-fault-injection".to_owned(),
        payload: JobPayload::Expansion {
            instance: {
                let wire = WireInstance::from_instance(&instance);
                WireInstanceSpec::Inline {
                    digest: instance_digest(&wire),
                    instance: wire,
                    extra_pool: Vec::new(),
                }
            },
            config,
            batch: requests.iter().map(WireExpansion::from_request).collect(),
        },
    };
    (job, serde_json::to_string(&expected).unwrap())
}

#[test]
fn killed_tcp_worker_mid_expansion_lease_loses_no_expansions() {
    let (job, expected_json) = expansion_job(0);

    let coordinator = Broker::new(TcpBroker::bind("127.0.0.1:0").unwrap());
    let addr = coordinator.transport().local_addr().to_string();
    coordinator.submit(&job).unwrap();

    // A ghost claims the expansion lease and never delivers — from the
    // coordinator's perspective a worker SIGKILLed mid-expansion.
    let ghost = Broker::new(TcpClient::new(addr.clone()));
    assert_eq!(ghost.steal("ghost").unwrap().unwrap().id, 0);
    assert_eq!(coordinator.transport().active_leases(), 1);
    assert!(coordinator.fetch_result(0).unwrap().is_none());

    // The lease expires and the batch is re-published — exactly once
    // (the v2 envelope rides the same lease ledger as v1 explain jobs).
    assert_eq!(
        coordinator
            .transport()
            .requeue_expired(Duration::ZERO)
            .unwrap(),
        1
    );
    assert_eq!(
        coordinator
            .transport()
            .requeue_expired(Duration::ZERO)
            .unwrap(),
        0
    );

    // Escalate to a real SIGKILL: a child process claims the re-published
    // batch and is killed while it holds the lease.
    let mut doomed = spawn_workers(
        &worker_bin(),
        &WorkerEndpoint::Tcp(addr.clone()),
        1,
        Duration::from_millis(1),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while coordinator.stats().unwrap().steals < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(
        coordinator.stats().unwrap().steals >= 2,
        "child never stole the expansion batch"
    );
    doomed[0].kill();
    drop(doomed);

    // If the kill landed mid-lease, the lease expires and a healthy
    // worker replays the whole batch; if the child won the race, the
    // results are already in. Either way: the same expansion bytes.
    if coordinator.fetch_result(0).unwrap().is_none() {
        assert_eq!(
            coordinator
                .transport()
                .requeue_expired(Duration::ZERO)
                .unwrap(),
            1,
            "the killed child's expansion lease must expire"
        );
        let healthy = spawn_workers(
            &worker_bin(),
            &WorkerEndpoint::Tcp(addr),
            1,
            Duration::from_millis(1),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        while coordinator.fetch_result(0).unwrap().is_none() {
            assert!(Instant::now() < deadline, "healthy worker never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }
        coordinator.request_shutdown().unwrap();
        drop(healthy);
    } else {
        coordinator.request_shutdown().unwrap();
    }

    coordinator.check_health().unwrap();
    let result = coordinator.fetch_result(0).unwrap().unwrap();
    let JobOutcome::Expanded { expansions, .. } = result.outcome else {
        panic!("expansion job failed after fault injection: {result:?}");
    };
    assert_eq!(
        serde_json::to_string(&expansions).unwrap(),
        expected_json,
        "the expansion batch after fault injection must be byte-identical to the local phase 1"
    );
    let stats = coordinator.stats().unwrap();
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.conflicts, 0, "{stats:?}");
}

/// Wait (bounded) for a child to exit and return its code.
fn wait_code(child: &mut std::process::Child, budget: Duration) -> i32 {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status.code().expect("worker exited without a code");
        }
        assert!(Instant::now() < deadline, "worker did not exit in time");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn fs_worker_exits_broker_lost_when_the_spool_disappears() {
    let spool = std::env::temp_dir().join("affidavit-transport-lost-spool");
    std::fs::remove_dir_all(&spool).ok();
    std::fs::create_dir_all(&spool).unwrap();
    let mut child = Command::new(worker_bin())
        .arg("--broker")
        .arg(&spool)
        .args([
            "--poll-ms",
            "2",
            "--reconnect-attempts",
            "3",
            "--worker-id",
            "w",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    // Let the worker enter its steal loop, then pull the spool out from
    // under it.
    std::thread::sleep(Duration::from_millis(300));
    std::fs::remove_dir_all(&spool).unwrap();
    assert_eq!(
        wait_code(&mut child, Duration::from_secs(30)),
        i32::from(BROKER_LOST_EXIT_CODE)
    );
}

#[test]
fn tcp_worker_exits_broker_lost_when_the_coordinator_dies() {
    let coordinator = TcpBroker::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().to_string();
    let mut child = Command::new(worker_bin())
        .args(["--connect", &addr])
        .args([
            "--poll-ms",
            "2",
            "--reconnect-attempts",
            "3",
            "--worker-id",
            "w",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    // Let the worker poll the live coordinator, then kill the listener.
    std::thread::sleep(Duration::from_millis(300));
    drop(coordinator);
    assert_eq!(
        wait_code(&mut child, Duration::from_secs(30)),
        i32::from(BROKER_LOST_EXIT_CODE)
    );
}
