//! The TCP transport: a coordinator-side listener, no shared filesystem.
//!
//! [`TcpBroker`] is the coordinator half: it binds a
//! [`std::net::TcpListener`], keeps the published queue, the delivered
//! results and — crucially — the **leases** in coordinator memory, and
//! serves framed request/response exchanges from any number of workers.
//! [`TcpClient`] is the worker half: it holds **one persistent framed
//! connection** to the coordinator and multiplexes every protocol
//! operation (claim, deliver, heartbeat, …) over it as one
//! request/response exchange. A failure on the kept-alive connection —
//! coordinator restart, an idle-killing middlebox — drops it and retries
//! the operation once on a fresh dial; a failure on the *fresh* dial
//! propagates, which is the broker-lost signal the worker's reconnect
//! loop and exit code 3 are built on. A worker that dies mid-job still
//! takes nothing down with it: its lease simply expires on the
//! coordinator and the job is re-published, exactly the straggler path
//! of the filesystem transport. The job/result payloads inside the
//! exchanges are the unchanged `wire.rs` v1 envelopes, opaque to this
//! module.
//!
//! Framing lives in [`crate::frame`] — a 4-byte big-endian length plus
//! JSON, with **progress-based** stall timeouts so a slow-but-advancing
//! peer mid-frame is never misread as dead. The JSON here is a small
//! tagged request/response vocabulary (this module's private
//! `Request`/`Response` enums); the `affidavit-serve` crate layers its
//! client-API vocabulary over the same codec. Oversized or malformed
//! frames fail the exchange, never the broker.
//!
//! Retrying an operation after a failure on the cached connection can
//! execute it twice on the coordinator (the first attempt may have been
//! applied before the reply was lost). Every operation tolerates that:
//! an extra publication is claimable exactly once and its eventual
//! duplicate result is compared-and-discarded, an abandoned extra claim
//! expires into a requeue, a repeated delivery takes the duplicate path,
//! and the rest are idempotent reads or sticky flags.
//!
//! Both halves implement [`Transport`], so the work-stealing protocol in
//! [`Broker`](crate::transport::Broker) — encoding, duplicate
//! compare-and-discard, conflict recording — runs unchanged over
//! sockets: `Broker<TcpBroker>` on the coordinator, `Broker<TcpClient>`
//! inside `affidavit-worker --connect`.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::frame::{configure_stream, read_frame, write_frame, FrameConfig, FrameRead};
use crate::queue::QueueStats;
use crate::transport::{requeue_backoff, Claimed, Delivered, Transport};

// ---- the request/response vocabulary -------------------------------------

/// One transport operation, as sent by a worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
enum Request {
    /// Liveness probe (worker reconnect logic).
    Ping,
    /// [`Transport::publish`].
    Publish { id: u64, envelope: String },
    /// [`Transport::claim`].
    Claim { worker: String },
    /// [`Transport::heartbeat`]: the worker is alive and still computing
    /// `id` — restart the lease clock so a legitimately long job is not
    /// requeued as a straggler.
    Heartbeat { worker: String, id: u64 },
    /// [`Transport::deliver`].
    Deliver {
        worker: String,
        id: u64,
        envelope: String,
    },
    /// [`Transport::discard_duplicate`].
    DiscardDuplicate { worker: String, id: u64 },
    /// [`Transport::record_conflict`].
    RecordConflict {
        worker: String,
        id: u64,
        envelope: String,
    },
    /// [`Transport::fetch`].
    Fetch { id: u64 },
    /// [`Transport::forget`]: retire `id` — drop its pending
    /// publications, leases and stored delivery, and discard any later
    /// delivery for it.
    Forget { id: u64 },
    /// [`Transport::requeue_expired`] (timeout in milliseconds).
    Requeue { base_timeout_ms: u64 },
    /// [`Transport::stop`].
    Stop,
    /// [`Transport::stopped`].
    Stopped,
    /// [`Transport::conflicts`].
    Conflicts,
    /// [`Transport::counters`].
    Counters,
}

/// The coordinator's answer to a [`Request`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
enum Response {
    /// Operation performed; nothing to return.
    Ok,
    /// A claim succeeded; the lease is now tracked coordinator-side.
    Job { id: u64, envelope: String },
    /// Nothing claimable (empty queue or stopped broker).
    Empty,
    /// First delivery for the id.
    Accepted,
    /// The id already has a delivery; compare against these bytes.
    Duplicate { existing: String },
    /// A fetch hit.
    Found { envelope: String },
    /// A fetch miss.
    NotFound,
    /// A boolean answer (`stopped`).
    Flag { value: bool },
    /// How many leases a requeue pass re-published.
    Requeued { count: u64 },
    /// Recorded conflict descriptions.
    ConflictList { items: Vec<String> },
    /// Steal-loop counters.
    CounterValues {
        steals: u64,
        requeues: u64,
        duplicates_discarded: u64,
        conflicts: u64,
    },
    /// The operation failed on the coordinator.
    Error { message: String },
}

// ---- coordinator side ----------------------------------------------------

/// One outstanding claim, tracked in coordinator memory. A worker that
/// vanishes (crash, killed process, dropped connection) simply stops
/// renewing its side of the story; the lease ages out and the envelope
/// is re-published.
#[derive(Debug)]
struct Lease {
    id: u64,
    envelope: String,
    claimed_at: Instant,
    requeued: bool,
}

#[derive(Debug, Default)]
struct TcpState {
    /// Published envelopes, claimable lowest job id first (matching the
    /// filesystem transport's sorted-file-name order); the second key
    /// component separates re-publications of the same id.
    pending: BTreeMap<(u64, u64), String>,
    next_submission: u64,
    leases: Vec<Lease>,
    results: BTreeMap<u64, String>,
    conflicts: Vec<String>,
    stats: QueueStats,
    stop: bool,
    /// Retired-id tracking, compacted: every id below `retired_floor` is
    /// retired, plus the (small, non-contiguous) set above it. Job ids
    /// are monotonic per coordinator and every id is eventually
    /// forgotten, so the floor advances and the set stays near-empty —
    /// O(1) memory over a daemon's lifetime.
    retired_floor: u64,
    retired: std::collections::BTreeSet<u64>,
}

impl TcpState {
    fn is_retired(&self, id: u64) -> bool {
        id < self.retired_floor || self.retired.contains(&id)
    }

    fn retire(&mut self, id: u64) {
        if id >= self.retired_floor {
            self.retired.insert(id);
        }
        while self.retired.remove(&self.retired_floor) {
            self.retired_floor += 1;
        }
    }
}

#[derive(Debug, Default)]
struct TcpShared {
    state: Mutex<TcpState>,
    accept_shutdown: AtomicBool,
    /// Accepted connections over the broker's lifetime — with keep-alive
    /// clients this stays at one per worker process, however many
    /// operations each performs.
    connections_served: AtomicUsize,
    /// Handles to the live keep-alive sockets, so dropping the broker
    /// can sever parked peers instead of leaving their serve threads
    /// answering a coordinator that no longer exists.
    conns: Mutex<Vec<Option<TcpStream>>>,
}

impl TcpShared {
    fn lock(&self) -> Result<MutexGuard<'_, TcpState>, String> {
        self.state
            .lock()
            .map_err(|_| "tcp broker state poisoned".to_owned())
    }

    /// Track a connection for shutdown-on-drop; returns its slot.
    fn register(&self, stream: Option<TcpStream>) -> usize {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.push(stream);
        conns.len() - 1
    }

    fn deregister(&self, slot: usize) {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns[slot] = None;
    }

    fn sever_all(&self) {
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The coordinator half of the TCP transport: listener, queue, results
/// and leases. Implements [`Transport`] directly against its own state —
/// the coordinator never talks to itself over a socket.
#[derive(Debug)]
pub struct TcpBroker {
    shared: Arc<TcpShared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpBroker {
    /// Bind a listener (e.g. `"127.0.0.1:0"` for an OS-chosen loopback
    /// port, `"0.0.0.0:9999"` to accept workers from other machines —
    /// trusted networks only, the protocol carries no authentication
    /// yet) and start serving requests in a background thread.
    pub fn bind(addr: &str) -> Result<TcpBroker, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local address of {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let shared = Arc::new(TcpShared::default());
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            while !accept_shared.accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&accept_shared);
                        let slot = shared.register(stream.try_clone().ok());
                        std::thread::spawn(move || {
                            serve_connection(stream, &shared);
                            shared.deregister(slot);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        Ok(TcpBroker {
            shared,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address — what workers dial with `--connect` (the port
    /// is the OS's pick when the bind address ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Results currently held — delivered but not yet forgotten. A
    /// well-behaved coordinator drives this back to zero after every
    /// batch; the probe exists so tests (and operators embedding the
    /// broker) can assert it.
    pub fn retained_results(&self) -> usize {
        self.shared
            .lock()
            .map(|state| state.results.len())
            .unwrap_or(0)
    }

    /// Leases currently outstanding (claimed, no delivery yet).
    pub fn active_leases(&self) -> usize {
        self.shared
            .lock()
            .map(|state| state.leases.iter().filter(|l| !l.requeued).count())
            .unwrap_or(0)
    }

    /// Connections the accept loop has served so far. Keep-alive clients
    /// hold one connection across all their operations, so this counts
    /// peers (plus reconnects), not requests.
    pub fn connections_served(&self) -> usize {
        self.shared.connections_served.load(Ordering::Relaxed)
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        self.shared.accept_shutdown.store(true, Ordering::Relaxed);
        // Sever parked keep-alive peers: their serve threads must not
        // keep answering for a coordinator that no longer exists (a
        // worker's next exchange fails, it probes, and the probe's fresh
        // dial finds the listener gone — the broker-lost path).
        self.shared.sever_all();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Serve framed requests on one accepted connection until the peer
/// closes it. Keep-alive clients park between operations; an idle stall
/// window ([`FrameRead::Idle`]) is normal on such a connection, not a
/// reason to hang up.
fn serve_connection(mut stream: TcpStream, shared: &TcpShared) {
    let cfg = FrameConfig::default();
    if configure_stream(&stream, &cfg).is_err() {
        return;
    }
    shared.connections_served.fetch_add(1, Ordering::Relaxed);
    loop {
        let text = match read_frame(&mut stream, &cfg) {
            Ok(FrameRead::Frame(text)) => text,
            // A parked keep-alive peer — unless the broker is shutting
            // down, in which case the thread must wind down too (the
            // socket is normally severed by `Drop`, this is the backstop
            // for a connection whose handle could not be cloned).
            Ok(FrameRead::Idle) => {
                if shared.accept_shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Ok(FrameRead::Closed) | Err(_) => return,
        };
        let response = match serde_json::from_str::<Request>(&text) {
            Ok(request) => answer(&request, shared),
            Err(e) => Response::Error {
                message: format!("malformed request: {e}"),
            },
        };
        let encoded = serde_json::to_string(&response).expect("responses are serializable");
        if write_frame(&mut stream, &encoded, &cfg).is_err() {
            return;
        }
    }
}

/// Execute one request against the coordinator state.
fn answer(request: &Request, shared: &TcpShared) -> Response {
    let fail = |message: String| Response::Error { message };
    let mut state = match shared.lock() {
        Ok(state) => state,
        Err(e) => return fail(e),
    };
    match request {
        Request::Ping => Response::Ok,
        Request::Publish { id, envelope } => {
            let sub = state.next_submission;
            state.next_submission += 1;
            state.pending.insert((*id, sub), envelope.clone());
            Response::Ok
        }
        Request::Claim { worker: _worker } => {
            if state.stop {
                return Response::Empty;
            }
            // Skip (and drop) publications of retired ids: their
            // coordinator has already withdrawn the work.
            let next = loop {
                match state.pending.pop_first() {
                    Some(((id, _), _)) if state.is_retired(id) => continue,
                    other => break other,
                }
            };
            match next {
                None => Response::Empty,
                Some(((id, _sub), envelope)) => {
                    state.leases.push(Lease {
                        id,
                        envelope: envelope.clone(),
                        claimed_at: Instant::now(),
                        requeued: false,
                    });
                    state.stats.steals += 1;
                    Response::Job { id, envelope }
                }
            }
        }
        Request::Heartbeat {
            worker: _worker,
            id,
        } => {
            // Restart the lease clock for every live lease on the id. A
            // heartbeat for an already-requeued or delivered job finds
            // nothing to renew — that is fine, the worker's eventual
            // duplicate delivery is compared-and-discarded as usual.
            let now = Instant::now();
            for lease in state
                .leases
                .iter_mut()
                .filter(|l| !l.requeued && l.id == *id)
            {
                lease.claimed_at = now;
            }
            Response::Ok
        }
        Request::Deliver {
            worker: _worker,
            id,
            envelope,
        } => {
            if state.is_retired(*id) {
                // A late delivery for withdrawn work: accept-and-drop,
                // so the worker moves on and nothing is stored.
                state.leases.retain(|lease| lease.id != *id);
                return Response::Accepted;
            }
            if let Some(existing) = state.results.get(id) {
                return Response::Duplicate {
                    existing: existing.clone(),
                };
            }
            state.results.insert(*id, envelope.clone());
            // The delivery ends every lease on this id — including a
            // re-published straggler's, whose eventual duplicate will be
            // compared and discarded.
            state.leases.retain(|lease| lease.id != *id);
            Response::Accepted
        }
        Request::DiscardDuplicate { .. } => {
            state.stats.duplicates_discarded += 1;
            Response::Ok
        }
        Request::RecordConflict {
            worker,
            id,
            envelope: _envelope,
        } => {
            state.conflicts.push(format!(
                "job {id}: worker {worker:?} delivered bytes diverging from the stored result"
            ));
            state.stats.conflicts += 1;
            Response::Ok
        }
        Request::Fetch { id } => match state.results.get(id) {
            Some(envelope) => Response::Found {
                envelope: envelope.clone(),
            },
            None => Response::NotFound,
        },
        Request::Forget { id } => {
            state.pending.retain(|(job_id, _), _| job_id != id);
            state.leases.retain(|lease| lease.id != *id);
            state.results.remove(id);
            state.retire(*id);
            Response::Ok
        }
        Request::Requeue { base_timeout_ms } => {
            let count = requeue_pass(&mut state, Duration::from_millis(*base_timeout_ms));
            Response::Requeued {
                count: count as u64,
            }
        }
        Request::Stop => {
            state.stop = true;
            Response::Ok
        }
        Request::Stopped => Response::Flag { value: state.stop },
        Request::Conflicts => Response::ConflictList {
            items: state.conflicts.clone(),
        },
        Request::Counters => Response::CounterValues {
            steals: state.stats.steals as u64,
            requeues: state.stats.requeues as u64,
            duplicates_discarded: state.stats.duplicates_discarded as u64,
            conflicts: state.stats.conflicts as u64,
        },
    }
}

/// Re-publish expired leases; shared by the direct ([`TcpBroker`]) and
/// remote ([`TcpClient`]) paths.
fn requeue_pass(state: &mut TcpState, base_timeout: Duration) -> usize {
    let now = Instant::now();
    let mut prior: HashMap<u64, u32> = HashMap::new();
    for lease in &state.leases {
        if lease.requeued {
            *prior.entry(lease.id).or_default() += 1;
        }
    }
    let mut republish: Vec<(u64, String)> = Vec::new();
    for lease in &mut state.leases {
        if lease.requeued || state.results.contains_key(&lease.id) {
            continue;
        }
        let required = requeue_backoff(base_timeout, prior.get(&lease.id).copied().unwrap_or(0));
        if now.duration_since(lease.claimed_at) < required {
            continue;
        }
        lease.requeued = true;
        republish.push((lease.id, lease.envelope.clone()));
    }
    let count = republish.len();
    for (id, envelope) in republish {
        let sub = state.next_submission;
        state.next_submission += 1;
        state.pending.insert((id, sub), envelope);
    }
    state.stats.requeues += count;
    count
}

/// Interpret an [`answer`]/[`TcpClient::call`] response as the
/// [`Transport`] return values — the one decoding table shared by the
/// coordinator's in-memory dispatch and the worker's socket exchange, so
/// the two halves cannot drift.
mod decode {
    use super::*;

    pub fn unit(response: Response, op: &str) -> Result<(), String> {
        match response {
            Response::Ok => Ok(()),
            other => Err(format!("unexpected {op} response {other:?}")),
        }
    }

    pub fn claim(response: Response) -> Result<Option<Claimed>, String> {
        match response {
            Response::Job { id, envelope } => Ok(Some(Claimed { id, envelope })),
            Response::Empty => Ok(None),
            other => Err(format!("unexpected claim response {other:?}")),
        }
    }

    pub fn deliver(response: Response) -> Result<Delivered, String> {
        match response {
            Response::Accepted => Ok(Delivered::Accepted),
            Response::Duplicate { existing } => Ok(Delivered::Duplicate { existing }),
            other => Err(format!("unexpected deliver response {other:?}")),
        }
    }

    pub fn fetch(response: Response) -> Result<Option<String>, String> {
        match response {
            Response::Found { envelope } => Ok(Some(envelope)),
            Response::NotFound => Ok(None),
            other => Err(format!("unexpected fetch response {other:?}")),
        }
    }

    pub fn requeued(response: Response) -> Result<usize, String> {
        match response {
            Response::Requeued { count } => Ok(count as usize),
            other => Err(format!("unexpected requeue response {other:?}")),
        }
    }

    pub fn flag(response: Response) -> Result<bool, String> {
        match response {
            Response::Flag { value } => Ok(value),
            other => Err(format!("unexpected stopped response {other:?}")),
        }
    }

    pub fn conflicts(response: Response) -> Result<Vec<String>, String> {
        match response {
            Response::ConflictList { items } => Ok(items),
            other => Err(format!("unexpected conflicts response {other:?}")),
        }
    }

    pub fn counters(response: Response) -> Result<QueueStats, String> {
        match response {
            Response::CounterValues {
                steals,
                requeues,
                duplicates_discarded,
                conflicts,
            } => Ok(QueueStats {
                steals: steals as usize,
                requeues: requeues as usize,
                duplicates_discarded: duplicates_discarded as usize,
                conflicts: conflicts as usize,
            }),
            other => Err(format!("unexpected counters response {other:?}")),
        }
    }
}

impl TcpBroker {
    /// Dispatch a request against the local state, surfacing
    /// [`Response::Error`] as `Err` like a remote exchange would.
    fn local(&self, request: &Request) -> Result<Response, String> {
        match answer(request, &self.shared) {
            Response::Error { message } => Err(message),
            response => Ok(response),
        }
    }
}

// ---- worker side ---------------------------------------------------------

/// The worker half of the TCP transport: one persistent framed
/// connection to the coordinator, with every operation a single
/// request/response exchange over it. Clones share the connection (they
/// are handles to the same keep-alive socket), and a mutex serializes
/// exchanges, so a worker's steal loop and its heartbeat ticker can use
/// the same client.
#[derive(Debug, Clone)]
pub struct TcpClient {
    addr: String,
    cfg: FrameConfig,
    conn: Arc<Mutex<Option<TcpStream>>>,
}

impl TcpClient {
    /// A client for the coordinator at `addr` (`HOST:PORT`). Dials
    /// lazily: the first operation establishes the keep-alive
    /// connection.
    pub fn new(addr: impl Into<String>) -> TcpClient {
        TcpClient {
            addr: addr.into(),
            cfg: FrameConfig::default(),
            conn: Arc::new(Mutex::new(None)),
        }
    }

    /// The coordinator address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One round trip: is the coordinator reachable and answering?
    pub fn ping(&self) -> Result<(), String> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(format!("unexpected ping response {other:?}")),
        }
    }

    /// One exchange over the persistent connection. A failure on the
    /// kept-alive socket may mean it silently went stale (coordinator
    /// restart, idle-killing middlebox) — drop it and retry the request
    /// once on a fresh dial. Fresh-dial failures propagate: that is the
    /// broker-lost signal the reconnect loop (and exit code 3) rely on.
    /// See the module docs for why a retried request is safe even if the
    /// first attempt was applied before its reply was lost.
    fn call(&self, request: &Request) -> Result<Response, String> {
        let encoded = serde_json::to_string(request).expect("requests are serializable");
        let mut conn = self
            .conn
            .lock()
            .map_err(|_| "tcp client connection poisoned".to_owned())?;
        if let Some(stream) = conn.as_mut() {
            match exchange(stream, &encoded, &self.cfg) {
                Ok(response) => return self.accept(response),
                Err(_) => *conn = None, // stale keep-alive; retry below
            }
        }
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to broker {}: {e}", self.addr))?;
        configure_stream(&stream, &self.cfg)?;
        let response = exchange(&mut stream, &encoded, &self.cfg)?;
        *conn = Some(stream);
        self.accept(response)
    }

    fn accept(&self, response: Response) -> Result<Response, String> {
        match response {
            Response::Error { message } => Err(format!("broker {}: {message}", self.addr)),
            response => Ok(response),
        }
    }
}

/// One framed request/response on an established connection. A client
/// awaiting its response treats an idle stall window as an error — only
/// servers park on idle.
fn exchange(stream: &mut TcpStream, encoded: &str, cfg: &FrameConfig) -> Result<Response, String> {
    write_frame(stream, encoded, cfg)?;
    match read_frame(stream, cfg)? {
        FrameRead::Frame(text) => {
            serde_json::from_str::<Response>(&text).map_err(|e| e.to_string())
        }
        FrameRead::Closed => Err("broker closed the connection mid-exchange".to_owned()),
        FrameRead::Idle => Err(format!(
            "broker sent no response within {:?}",
            cfg.stall_timeout
        )),
    }
}

/// The [`Transport`] methods expressed once over a request dispatcher —
/// `TcpBroker::local` (coordinator, in-memory) and `TcpClient::call`
/// (worker, over the socket) get the exact same request construction
/// and response decoding, so the two halves cannot drift.
macro_rules! transport_via_requests {
    ($ty:ty, $dispatch:ident) => {
        impl Transport for $ty {
            fn publish(&self, id: u64, envelope: &str) -> Result<(), String> {
                decode::unit(
                    self.$dispatch(&Request::Publish {
                        id,
                        envelope: envelope.to_owned(),
                    })?,
                    "publish",
                )
            }

            fn claim(&self, worker: &str) -> Result<Option<Claimed>, String> {
                decode::claim(self.$dispatch(&Request::Claim {
                    worker: worker.to_owned(),
                })?)
            }

            fn heartbeat(&self, worker: &str, id: u64) -> Result<(), String> {
                decode::unit(
                    self.$dispatch(&Request::Heartbeat {
                        worker: worker.to_owned(),
                        id,
                    })?,
                    "heartbeat",
                )
            }

            fn deliver(&self, worker: &str, id: u64, envelope: &str) -> Result<Delivered, String> {
                decode::deliver(self.$dispatch(&Request::Deliver {
                    worker: worker.to_owned(),
                    id,
                    envelope: envelope.to_owned(),
                })?)
            }

            fn discard_duplicate(&self, worker: &str, id: u64) -> Result<(), String> {
                decode::unit(
                    self.$dispatch(&Request::DiscardDuplicate {
                        worker: worker.to_owned(),
                        id,
                    })?,
                    "discard",
                )
            }

            fn record_conflict(&self, worker: &str, id: u64, envelope: &str) -> Result<(), String> {
                decode::unit(
                    self.$dispatch(&Request::RecordConflict {
                        worker: worker.to_owned(),
                        id,
                        envelope: envelope.to_owned(),
                    })?,
                    "conflict",
                )
            }

            fn fetch(&self, id: u64) -> Result<Option<String>, String> {
                decode::fetch(self.$dispatch(&Request::Fetch { id })?)
            }

            fn forget(&self, id: u64) -> Result<(), String> {
                decode::unit(self.$dispatch(&Request::Forget { id })?, "forget")
            }

            fn requeue_expired(&self, base_timeout: Duration) -> Result<usize, String> {
                decode::requeued(self.$dispatch(&Request::Requeue {
                    base_timeout_ms: base_timeout.as_millis() as u64,
                })?)
            }

            fn stop(&self) -> Result<(), String> {
                decode::unit(self.$dispatch(&Request::Stop)?, "stop")
            }

            fn stopped(&self) -> Result<bool, String> {
                decode::flag(self.$dispatch(&Request::Stopped)?)
            }

            fn conflicts(&self) -> Result<Vec<String>, String> {
                decode::conflicts(self.$dispatch(&Request::Conflicts)?)
            }

            fn counters(&self) -> Result<QueueStats, String> {
                decode::counters(self.$dispatch(&Request::Counters)?)
            }
        }
    };
}

transport_via_requests!(TcpBroker, local);
transport_via_requests!(TcpClient, call);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobOutcome, JobPayload, JobResult};
    use crate::queue::JobQueue;
    use crate::transport::Broker;
    use crate::wire::WireInstance;

    fn dummy_job(id: u64) -> Job {
        Job {
            id,
            name: format!("job-{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into()],
                    source: vec![vec![0]],
                    target: vec![vec![0]],
                },
                config: affidavit_core::AffidavitConfig::paper_id(),
            },
        }
    }

    fn dummy_result(id: u64, worker: &str, reason: &str) -> JobResult {
        JobResult {
            id,
            name: format!("job-{id}"),
            worker: worker.to_owned(),
            outcome: JobOutcome::Failed {
                reason: reason.to_owned(),
            },
        }
    }

    fn pair() -> (Broker<TcpBroker>, Broker<TcpClient>) {
        let server = TcpBroker::bind("127.0.0.1:0").expect("bind loopback");
        let client = TcpClient::new(server.local_addr().to_string());
        (Broker::new(server), Broker::new(client))
    }

    #[test]
    fn steal_over_sockets_is_exclusive_and_fifo_by_id() {
        let (coordinator, worker) = pair();
        coordinator.submit(&dummy_job(1)).unwrap();
        coordinator.submit(&dummy_job(0)).unwrap();
        // Lowest id first, regardless of submission order — matching the
        // filesystem transport's sorted-name semantics.
        assert_eq!(worker.steal("a").unwrap().unwrap().id, 0);
        assert_eq!(worker.steal("b").unwrap().unwrap().id, 1);
        assert!(worker.steal("a").unwrap().is_none());
        assert_eq!(coordinator.stats().unwrap().steals, 2);
        assert_eq!(coordinator.transport().active_leases(), 2);
    }

    #[test]
    fn one_keepalive_connection_serves_many_operations() {
        let (coordinator, worker) = pair();
        coordinator.submit(&dummy_job(0)).unwrap();
        // A representative worker lifetime: probe, steal, heartbeat,
        // deliver, poll for shutdown — all over the socket.
        worker.transport().ping().unwrap();
        assert_eq!(worker.steal("a").unwrap().unwrap().id, 0);
        worker.transport().heartbeat("a", 0).unwrap();
        worker.complete("a", &dummy_result(0, "a", "done")).unwrap();
        assert!(!worker.shutdown_requested().unwrap());
        assert_eq!(worker.stats().unwrap().steals, 1);
        // Every operation above shared one accepted connection. (The
        // coordinator side dispatches in-memory and never dials itself.)
        assert_eq!(coordinator.transport().connections_served(), 1);
        // A clone is a handle to the same keep-alive socket.
        worker.transport().clone().ping().unwrap();
        assert_eq!(coordinator.transport().connections_served(), 1);
    }

    #[test]
    fn stale_keepalive_connection_is_redialed_transparently() {
        use std::io::Write as _;
        // A coordinator stand-in that hangs up after every answered
        // request — the worst-case keep-alive peer. The client must
        // notice the dead cached connection on the next operation and
        // retry it once on a fresh dial.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let cfg = FrameConfig::default();
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                configure_stream(&stream, &cfg).unwrap();
                match read_frame(&mut stream, &cfg).unwrap() {
                    FrameRead::Frame(_) => {}
                    other => panic!("expected a request, got {other:?}"),
                }
                let ok = serde_json::to_string(&Response::Ok).unwrap();
                write_frame(&mut stream, &ok, &cfg).unwrap();
                stream.flush().unwrap();
                // Hanging up poisons the client's cached connection.
            }
        });
        let client = TcpClient::new(addr.to_string());
        client.ping().expect("first ping, fresh dial");
        client
            .ping()
            .expect("second ping, redial after stale cache");
        server.join().unwrap();
    }

    #[test]
    fn heartbeat_restarts_the_lease_clock() {
        // Drive the coordinator state directly — no sockets, no sleeps:
        // the lease age is manipulated by hand so the test is exact.
        let shared = TcpShared::default();
        let publish = Request::Publish {
            id: 5,
            envelope: "envelope".to_owned(),
        };
        assert!(matches!(answer(&publish, &shared), Response::Ok));
        let claim = Request::Claim {
            worker: "w".to_owned(),
        };
        assert!(matches!(answer(&claim, &shared), Response::Job { .. }));
        let age = |shared: &TcpShared, by: Duration| {
            shared.lock().unwrap().leases[0].claimed_at = Instant::now() - by;
        };
        // The lease is a minute old — far past a 30s timeout — but a
        // heartbeat lands before the requeue pass: the clock restarts
        // and the job is NOT treated as a straggler.
        age(&shared, Duration::from_secs(60));
        let beat = Request::Heartbeat {
            worker: "w".to_owned(),
            id: 5,
        };
        assert!(matches!(answer(&beat, &shared), Response::Ok));
        let timeout = Duration::from_secs(30);
        assert_eq!(requeue_pass(&mut shared.lock().unwrap(), timeout), 0);
        // The same aged lease without a heartbeat is requeued.
        age(&shared, Duration::from_secs(60));
        assert_eq!(requeue_pass(&mut shared.lock().unwrap(), timeout), 1);
        // Heartbeats for requeued (or unknown) ids renew nothing.
        assert!(matches!(answer(&beat, &shared), Response::Ok));
        assert_eq!(shared.lock().unwrap().stats.requeues, 1);
    }

    #[test]
    fn results_roundtrip_and_duplicates_are_checked() {
        let (coordinator, worker) = pair();
        worker.complete("a", &dummy_result(4, "a", "same")).unwrap();
        worker.complete("b", &dummy_result(4, "b", "same")).unwrap();
        assert_eq!(coordinator.fetch_result(4).unwrap().unwrap().worker, "a");
        assert_eq!(coordinator.stats().unwrap().duplicates_discarded, 1);
        assert!(coordinator.check_health().is_ok());
        worker
            .complete("c", &dummy_result(4, "c", "DIFFERENT"))
            .unwrap();
        assert!(coordinator
            .check_health()
            .unwrap_err()
            .contains("diverging"));
        assert_eq!(coordinator.stats().unwrap().conflicts, 1);
    }

    #[test]
    fn dropped_worker_lease_expires_and_is_republished() {
        let (coordinator, worker) = pair();
        coordinator.submit(&dummy_job(9)).unwrap();
        // The worker claims the job and then "dies" — the lease is all
        // the coordinator remembers of it.
        assert_eq!(worker.steal("doomed").unwrap().unwrap().id, 9);
        assert!(worker.steal("other").unwrap().is_none());
        assert_eq!(coordinator.transport().active_leases(), 1);
        // The lease is immediately stale under a zero timeout, and is
        // re-published exactly once.
        assert_eq!(
            coordinator
                .transport()
                .requeue_expired(Duration::ZERO)
                .unwrap(),
            1
        );
        assert_eq!(
            coordinator
                .transport()
                .requeue_expired(Duration::ZERO)
                .unwrap(),
            0
        );
        assert_eq!(worker.steal("other").unwrap().unwrap().id, 9);
        worker
            .complete("other", &dummy_result(9, "other", "done"))
            .unwrap();
        assert_eq!(
            coordinator
                .transport()
                .requeue_expired(Duration::ZERO)
                .unwrap(),
            0
        );
        assert_eq!(coordinator.stats().unwrap().requeues, 1);
        assert_eq!(
            coordinator.fetch_result(9).unwrap().unwrap().worker,
            "other"
        );
    }

    #[test]
    fn forget_retires_ids_on_both_halves() {
        let (coordinator, worker) = pair();
        coordinator.submit(&dummy_job(0)).unwrap();
        coordinator.submit(&dummy_job(1)).unwrap();
        // Forgetting a pending job withdraws it before any worker sees it.
        coordinator.forget(0).unwrap();
        assert_eq!(worker.steal("w").unwrap().unwrap().id, 1);
        assert!(worker.steal("w").unwrap().is_none());
        // An in-flight job forgotten mid-compute: the late delivery is
        // accept-and-dropped, its lease is gone, nothing is retained.
        coordinator.forget(1).unwrap();
        worker.complete("w", &dummy_result(1, "w", "late")).unwrap();
        assert!(coordinator.fetch_result(1).unwrap().is_none());
        assert_eq!(coordinator.transport().active_leases(), 0);
        assert_eq!(coordinator.transport().retained_results(), 0);
        assert!(coordinator.check_health().is_ok());
        // Absorb-then-forget over the socket path too.
        coordinator.submit(&dummy_job(2)).unwrap();
        assert_eq!(worker.steal("w").unwrap().unwrap().id, 2);
        worker.complete("w", &dummy_result(2, "w", "done")).unwrap();
        assert!(coordinator.fetch_result(2).unwrap().is_some());
        worker.forget(2).unwrap();
        assert_eq!(coordinator.transport().retained_results(), 0);
    }

    #[test]
    fn shutdown_stops_handing_out_pending_jobs() {
        let (coordinator, worker) = pair();
        coordinator.submit(&dummy_job(0)).unwrap();
        coordinator.request_shutdown().unwrap();
        assert!(worker.shutdown_requested().unwrap());
        assert!(worker.steal("w").unwrap().is_none());
    }

    #[test]
    fn ping_fails_once_the_coordinator_is_gone() {
        let (coordinator, worker) = pair();
        let client = worker.transport().clone();
        client.ping().expect("coordinator up");
        let addr = coordinator.transport().local_addr().to_string();
        drop(coordinator);
        // The listener is closed and the port released. The cached
        // keep-alive connection is dead, the redial finds no listener:
        // the probe the worker's reconnect loop uses must fail.
        assert!(client.ping().is_err());
        // And so must a fresh client's first dial.
        assert!(TcpClient::new(addr).ping().is_err());
    }
}
