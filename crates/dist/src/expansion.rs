//! Expansion stealing: the speculation driver's K-way frontier batches
//! published to the work-stealing broker.
//!
//! [`ExpansionFleet`] implements the engine's
//! [`ExpansionExecutor`] seam over the same queue/transport stack that
//! carries whole-snapshot profiling jobs: the driver's speculated batch
//! is chunked into [`JobPayload::Expansion`] jobs, published, and stolen
//! by whichever workers are attached — local threads over an
//! [`InProcessQueue`], `affidavit-worker` child processes over a spool
//! directory or a TCP listener, or both at once (the TCP accept loop
//! admits workers attaching mid-run, and the lease/requeue protocol
//! absorbs workers leaving).
//!
//! Because phase-1 expansion is a pure function of `(instance, config,
//! request)`, nothing here can perturb the search: the fleet either
//! returns byte-identical expansions in request order or declines the
//! batch (`None`), in which case the driver expands locally. Declines
//! are the universal failure mode — transport down, deadline exceeded, a
//! malformed result — so a degraded fleet costs wall time, never
//! correctness.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use affidavit_core::{
    resolve_parallelism, AffidavitConfig, ExpansionExecutor, ExpansionRequest, PortableExpansion,
    ProblemInstance,
};

use crate::broker::{spawn_workers, worker_binary, FsBroker, WorkerEndpoint, WorkerHandle};
use crate::coordinate::DistBackend;
use crate::job::{Job, JobOutcome, JobPayload, JobResult};
use crate::queue::{InProcessQueue, JobQueue, QueueStats};
use crate::tcp::TcpBroker;
use crate::transport::Broker;
use crate::wire::{WireExpansion, WireInstance};

/// Knobs of an expansion-stealing fleet.
#[derive(Debug, Clone)]
pub struct ExpansionFleetOptions {
    /// Worker count (threads or child processes). `0` — the default —
    /// autosizes to one per hardware thread
    /// ([`std::thread::available_parallelism`]).
    pub workers: usize,
    /// Transport and worker placement (same vocabulary as profiling
    /// jobs).
    pub backend: DistBackend,
    /// Expansions leased per job (`--expansion-batch`): the driver's
    /// K-way batch is chunked into jobs of this many requests. `0` means
    /// "the whole batch as one job".
    pub batch: usize,
    /// Claims older than this without a result are re-published for
    /// other workers to steal (covers workers killed mid-lease).
    pub steal_timeout: Duration,
    /// Per-batch cap: past it the batch is declined and the driver
    /// expands locally.
    pub deadline: Duration,
    /// Coordinator/worker polling nap.
    pub poll: Duration,
}

impl Default for ExpansionFleetOptions {
    fn default() -> ExpansionFleetOptions {
        ExpansionFleetOptions {
            workers: 0,
            backend: DistBackend::InProcess,
            batch: 4,
            steal_timeout: Duration::from_secs(30),
            deadline: Duration::from_secs(120),
            poll: Duration::from_millis(1),
        }
    }
}

enum FleetQueue {
    InProcess {
        queue: Arc<InProcessQueue>,
        threads: Vec<std::thread::JoinHandle<Result<crate::worker::WorkerStats, String>>>,
    },
    Fs {
        broker: FsBroker,
        root: PathBuf,
        owned: bool,
        children: Vec<WorkerHandle>,
    },
    Tcp {
        broker: Broker<TcpBroker>,
        children: Vec<WorkerHandle>,
    },
}

impl FleetQueue {
    fn queue(&self) -> &dyn JobQueue {
        match self {
            FleetQueue::InProcess { queue, .. } => &**queue,
            FleetQueue::Fs { broker, .. } => broker,
            FleetQueue::Tcp { broker, .. } => broker,
        }
    }

    fn requeue_expired(&self, timeout: Duration) -> Result<usize, String> {
        use crate::transport::Transport;
        match self {
            // In-process workers are threads of this very process: they
            // cannot be killed mid-lease, so there is nothing to requeue.
            FleetQueue::InProcess { .. } => Ok(0),
            FleetQueue::Fs { broker, .. } => broker.transport().requeue_expired(timeout),
            FleetQueue::Tcp { broker, .. } => broker.transport().requeue_expired(timeout),
        }
    }
}

/// A persistent expansion-stealing fleet, attachable to any number of
/// searches via
/// [`Affidavit::with_expansion_executor`](affidavit_core::Affidavit::with_expansion_executor).
///
/// Workers are spawned once at construction and survive across
/// speculation batches; [`Drop`] winds them down. On the TCP backend,
/// externally started `affidavit-worker --connect` processes may attach
/// to [`tcp_addr`](ExpansionFleet::tcp_addr) at any time and steal from
/// the same queue as the fleet's own workers.
pub struct ExpansionFleet {
    opts: ExpansionFleetOptions,
    queue: FleetQueue,
    next_id: AtomicU64,
    workers: usize,
}

impl std::fmt::Debug for ExpansionFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionFleet")
            .field("workers", &self.workers)
            .field("batch", &self.opts.batch)
            .finish_non_exhaustive()
    }
}

impl ExpansionFleet {
    /// Spawn the fleet: `workers` threads (in-process backend) or
    /// `affidavit-worker` child processes (spool / TCP backends), all
    /// idle-polling the queue until the first batch arrives.
    pub fn new(opts: ExpansionFleetOptions) -> Result<ExpansionFleet, String> {
        let workers = resolve_parallelism(opts.workers);
        let queue = match &opts.backend {
            DistBackend::InProcess => {
                let queue = Arc::new(InProcessQueue::new());
                let threads = (0..workers)
                    .map(|w| {
                        let queue = Arc::clone(&queue);
                        let poll = opts.poll;
                        std::thread::spawn(move || {
                            crate::worker::run_worker(&*queue, &format!("spec-{w}"), poll)
                        })
                    })
                    .collect();
                FleetQueue::InProcess { queue, threads }
            }
            DistBackend::ChildProcesses {
                broker_dir,
                worker_bin,
            } => {
                static RUN: AtomicU64 = AtomicU64::new(0);
                let (root, owned) = match broker_dir {
                    Some(dir) => (dir.clone(), false),
                    None => {
                        let nanos = std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_nanos())
                            .unwrap_or(0);
                        let dir = std::env::temp_dir().join(format!(
                            "affidavit-spec-{}-{}-{nanos}",
                            std::process::id(),
                            RUN.fetch_add(1, Ordering::Relaxed)
                        ));
                        (dir, true)
                    }
                };
                let bin = match worker_bin {
                    Some(path) => path.clone(),
                    None => worker_binary()?,
                };
                let broker = FsBroker::open(&root)?;
                broker.ensure_fresh()?;
                let endpoint = WorkerEndpoint::Spool(root.clone());
                let children = spawn_workers(&bin, &endpoint, workers, opts.poll)?;
                FleetQueue::Fs {
                    broker,
                    root,
                    owned,
                    children,
                }
            }
            DistBackend::Tcp { listen, worker_bin } => {
                let bin = match worker_bin {
                    Some(path) => path.clone(),
                    None => worker_binary()?,
                };
                let broker =
                    Broker::new(TcpBroker::bind(listen.as_deref().unwrap_or("127.0.0.1:0"))?);
                let endpoint = WorkerEndpoint::Tcp(broker.transport().local_addr().to_string());
                let children = spawn_workers(&bin, &endpoint, workers, opts.poll)?;
                FleetQueue::Tcp { broker, children }
            }
        };
        Ok(ExpansionFleet {
            opts,
            queue,
            next_id: AtomicU64::new(0),
            workers,
        })
    }

    /// A fleet with default options over the given backend.
    pub fn with_backend(backend: DistBackend, workers: usize) -> Result<ExpansionFleet, String> {
        ExpansionFleet::new(ExpansionFleetOptions {
            backend,
            workers,
            ..ExpansionFleetOptions::default()
        })
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The TCP listener address (for externally attaching workers), if
    /// the fleet runs on the TCP backend.
    pub fn tcp_addr(&self) -> Option<String> {
        match &self.queue {
            FleetQueue::Tcp { broker, .. } => Some(broker.transport().local_addr().to_string()),
            _ => None,
        }
    }

    /// Steal-loop counters accumulated over the fleet's lifetime.
    pub fn stats(&self) -> Result<QueueStats, String> {
        self.queue.queue().stats()
    }

    fn run_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
    ) -> Result<Vec<PortableExpansion>, String> {
        let _span = affidavit_obs::span_with(
            "dist.expansion_batch",
            vec![("requests".to_owned(), batch.len().to_string())],
        );
        let started = Instant::now();
        let wire_instance = WireInstance::from_instance(instance);
        let src_rows = instance.source.len();
        let tgt_rows = instance.target.len();
        let chunk = if self.opts.batch == 0 {
            batch.len().max(1)
        } else {
            self.opts.batch
        };
        let queue = self.queue.queue();
        // One job per chunk, ids unique across the fleet's lifetime so a
        // straggler result from an abandoned batch can never be absorbed
        // as a later batch's.
        let mut manifest: Vec<(u64, usize)> = Vec::new();
        for (i, requests) in batch.chunks(chunk).enumerate() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let job = Job {
                id,
                name: format!("expansion-{id}"),
                payload: JobPayload::Expansion {
                    instance: wire_instance.clone(),
                    config: cfg.clone(),
                    batch: requests.iter().map(WireExpansion::from_request).collect(),
                },
            };
            queue.submit(&job)?;
            manifest.push((id, i * chunk));
        }
        let deadline = started + self.opts.deadline;
        let mut results: BTreeMap<u64, JobResult> = BTreeMap::new();
        let mut last_requeue = Instant::now();
        while results.len() < manifest.len() {
            let mut fetched_new = false;
            for &(id, _) in &manifest {
                if let std::collections::btree_map::Entry::Vacant(slot) = results.entry(id) {
                    if let Some(result) = queue.fetch_result(id)? {
                        slot.insert(result);
                        fetched_new = true;
                        affidavit_obs::metrics().observe(
                            "dist_expansion_rtt_micros",
                            started.elapsed().as_micros() as f64,
                        );
                    }
                }
            }
            if fetched_new {
                queue.check_health()?;
                continue;
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "expansion batch exceeded its deadline with {}/{} results",
                    results.len(),
                    manifest.len()
                ));
            }
            if last_requeue.elapsed() >= self.opts.steal_timeout {
                last_requeue = Instant::now();
                self.queue.requeue_expired(self.opts.steal_timeout)?;
            }
            std::thread::sleep(self.opts.poll);
        }
        let mut expansions: Vec<PortableExpansion> = Vec::with_capacity(batch.len());
        for &(id, _) in &manifest {
            let result = results.get(&id).expect("all results fetched above");
            match &result.outcome {
                JobOutcome::Expanded {
                    expansions: wire, ..
                } => {
                    for w in wire {
                        expansions.push(w.to_portable(src_rows, tgt_rows)?);
                    }
                }
                JobOutcome::Failed { reason } => {
                    return Err(format!("expansion job {id} failed: {reason}"))
                }
                JobOutcome::Explained { .. } => {
                    return Err(format!(
                        "expansion job {id} came back as an explanation result"
                    ))
                }
            }
        }
        if expansions.len() != batch.len() {
            return Err(format!(
                "expansion batch returned {} results for {} requests",
                expansions.len(),
                batch.len()
            ));
        }
        Ok(expansions)
    }
}

impl ExpansionExecutor for ExpansionFleet {
    fn expand_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
    ) -> Option<Vec<PortableExpansion>> {
        if batch.is_empty() {
            return Some(Vec::new());
        }
        match self.run_batch(instance, cfg, batch) {
            Ok(expansions) => Some(expansions),
            Err(reason) => {
                // Declining is always safe: the driver falls back to its
                // local phase-1 path and the search stays byte-identical.
                affidavit_obs::metrics().add_counter("dist_expansion_declined", 1);
                affidavit_obs::diag("dist.expansion_declined", &reason);
                None
            }
        }
    }
}

impl Drop for ExpansionFleet {
    fn drop(&mut self) {
        // Wind down whatever half of the fleet is still alive; errors are
        // moot — the queue is going away with us.
        self.queue.queue().request_shutdown().ok();
        match &mut self.queue {
            FleetQueue::InProcess { threads, .. } => {
                for handle in threads.drain(..) {
                    handle.join().ok();
                }
            }
            FleetQueue::Fs {
                children,
                root,
                owned,
                ..
            } => {
                for child in children.iter_mut() {
                    child.wait().ok();
                }
                if *owned {
                    std::fs::remove_dir_all(&*root).ok();
                }
            }
            FleetQueue::Tcp { children, .. } => {
                for child in children.iter_mut() {
                    child.wait().ok();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_core::Affidavit;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut pool,
            (0..40).map(|i| vec![format!("k{i}"), format!("{}", (i + 1) * 1000), "usd".into()]),
        );
        let t = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut pool,
            (0..40).map(|i| vec![format!("k{i}"), format!("{}", i + 1), "USD".into()]),
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    fn spec_config() -> AffidavitConfig {
        AffidavitConfig::paper_id()
            .with_trace()
            .with_speculative_width(4)
            .with_speculation_min_records(0)
    }

    #[test]
    fn in_process_fleet_reproduces_the_local_search_exactly() {
        let cfg = spec_config();
        let mut base = instance();
        let baseline = Affidavit::new(cfg.clone()).explain(&mut base);

        let fleet = ExpansionFleet::new(ExpansionFleetOptions {
            workers: 2,
            ..ExpansionFleetOptions::default()
        })
        .unwrap();
        let mut inst = instance();
        let stolen = Affidavit::new(cfg)
            .with_expansion_executor(Arc::new(fleet))
            .explain(&mut inst);

        assert_eq!(
            format!("{:?}", stolen.explanation),
            format!("{:?}", baseline.explanation)
        );
        assert_eq!(stolen.stats.polled, baseline.stats.polled);
        assert_eq!(stolen.stats.expansions, baseline.stats.expansions);
        assert_eq!(
            format!("{:?}", stolen.trace),
            format!("{:?}", baseline.trace)
        );
        // The pools grew identically — symbol numbering is part of the
        // byte-identity contract.
        let a: Vec<&str> = base.pool.iter().map(|(_, s)| s).collect();
        let b: Vec<&str> = inst.pool.iter().map(|(_, s)| s).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn the_fleet_is_reusable_across_searches() {
        let fleet = Arc::new(
            ExpansionFleet::new(ExpansionFleetOptions {
                workers: 2,
                batch: 1,
                ..ExpansionFleetOptions::default()
            })
            .unwrap(),
        );
        let cfg = spec_config();
        let mut first = instance();
        let mut second = instance();
        let a = Affidavit::new(cfg.clone())
            .with_expansion_executor(fleet.clone() as Arc<dyn ExpansionExecutor>)
            .explain(&mut first);
        let b = Affidavit::new(cfg)
            .with_expansion_executor(fleet as Arc<dyn ExpansionExecutor>)
            .explain(&mut second);
        assert_eq!(
            format!("{:?}", a.explanation),
            format!("{:?}", b.explanation)
        );
        assert_eq!(a.stats.polled, b.stats.polled);
    }
}
