//! Expansion stealing: the speculation driver's K-way frontier batches
//! published to the work-stealing broker.
//!
//! [`ExpansionFleet`] implements the engine's
//! [`ExpansionExecutor`] seam over the same queue/transport stack that
//! carries whole-snapshot profiling jobs: the driver's speculated batch
//! is chunked into [`JobPayload::Expansion`] jobs, published, and stolen
//! by whichever workers are attached — local threads over an
//! [`InProcessQueue`], `affidavit-worker` child processes over a spool
//! directory or a TCP listener, or both at once (the TCP accept loop
//! admits workers attaching mid-run, and the lease/requeue protocol
//! absorbs workers leaving).
//!
//! Because phase-1 expansion is a pure function of `(instance, config,
//! request)`, nothing here can perturb the search: the fleet either
//! returns byte-identical expansions in request order or declines the
//! batch (`None`), in which case the driver expands locally. Declines
//! are the universal failure mode — transport down, deadline exceeded, a
//! malformed result — so a degraded fleet costs wall time, never
//! correctness.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use affidavit_core::{
    resolve_parallelism, AffidavitConfig, ExpansionExecutor, ExpansionRequest, PortableExpansion,
    ProblemInstance,
};

use crate::broker::{spawn_workers, worker_binary, FsBroker, WorkerEndpoint, WorkerHandle};
use crate::coordinate::DistBackend;
use crate::job::{is_instance_miss, Job, JobOutcome, JobPayload, JobResult};
use crate::queue::{InProcessQueue, JobQueue, QueueStats};
use crate::tcp::TcpBroker;
use crate::transport::Broker;
use crate::wire::{instance_digest, WireExpansion, WireInstance, WireInstanceSpec};

/// Knobs of an expansion-stealing fleet.
#[derive(Debug, Clone)]
pub struct ExpansionFleetOptions {
    /// Worker count (threads or child processes). `0` — the default —
    /// autosizes to one per hardware thread
    /// ([`std::thread::available_parallelism`]).
    pub workers: usize,
    /// Transport and worker placement (same vocabulary as profiling
    /// jobs).
    pub backend: DistBackend,
    /// Expansions leased per job (`--expansion-batch`): the driver's
    /// K-way batch is chunked into jobs of this many requests. `0` means
    /// "the whole batch as one job".
    pub batch: usize,
    /// Claims older than this without a result are re-published for
    /// other workers to steal (covers workers killed mid-lease).
    pub steal_timeout: Duration,
    /// Per-batch cap: past it the batch is declined and the driver
    /// expands locally.
    pub deadline: Duration,
    /// Coordinator/worker polling nap.
    pub poll: Duration,
}

impl Default for ExpansionFleetOptions {
    fn default() -> ExpansionFleetOptions {
        ExpansionFleetOptions {
            workers: 0,
            backend: DistBackend::InProcess,
            batch: 4,
            steal_timeout: Duration::from_secs(30),
            deadline: Duration::from_secs(120),
            poll: Duration::from_millis(1),
        }
    }
}

enum FleetQueue {
    InProcess {
        queue: Arc<InProcessQueue>,
        threads: Vec<std::thread::JoinHandle<Result<crate::worker::WorkerStats, String>>>,
    },
    Fs {
        broker: FsBroker,
        root: PathBuf,
        owned: bool,
        children: Vec<WorkerHandle>,
    },
    Tcp {
        broker: Broker<TcpBroker>,
        children: Vec<WorkerHandle>,
    },
}

impl FleetQueue {
    fn queue(&self) -> &dyn JobQueue {
        match self {
            FleetQueue::InProcess { queue, .. } => &**queue,
            FleetQueue::Fs { broker, .. } => broker,
            FleetQueue::Tcp { broker, .. } => broker,
        }
    }

    fn requeue_expired(&self, timeout: Duration) -> Result<usize, String> {
        use crate::transport::Transport;
        match self {
            // In-process workers are threads of this very process: they
            // cannot be killed mid-lease, so there is nothing to requeue.
            FleetQueue::InProcess { .. } => Ok(0),
            FleetQueue::Fs { broker, .. } => broker.transport().requeue_expired(timeout),
            FleetQueue::Tcp { broker, .. } => broker.transport().requeue_expired(timeout),
        }
    }
}

/// A persistent expansion-stealing fleet, attachable to any number of
/// searches via
/// [`Affidavit::with_expansion_executor`](affidavit_core::Affidavit::with_expansion_executor).
///
/// Workers are spawned once at construction and survive across
/// speculation batches; [`Drop`] winds them down. On the TCP backend,
/// externally started `affidavit-worker --connect` processes may attach
/// to [`tcp_addr`](ExpansionFleet::tcp_addr) at any time and steal from
/// the same queue as the fleet's own workers.
pub struct ExpansionFleet {
    opts: ExpansionFleetOptions,
    queue: FleetQueue,
    next_id: AtomicU64,
    workers: usize,
    /// Bases already shipped to the fleet's workers, most recently used
    /// last — the coordinator half of the content-addressed instance
    /// protocol (see [`WireInstanceSpec`]).
    shipped: Mutex<Vec<ShippedBase>>,
}

/// How many shipped bases the coordinator tracks. Matches the worker
/// side ([`InstanceCache::CAPACITY`](crate::job::InstanceCache)), so a
/// base the coordinator still plans around is one its steady workers
/// still hold.
const SHIPPED_BASES: usize = crate::job::InstanceCache::CAPACITY;

/// One content-addressed instance the fleet has shipped inline: enough
/// to recognize a later snapshot of the same search — tables identical,
/// pool grown append-only — without re-serializing anything.
#[derive(Debug)]
struct ShippedBase {
    /// [`instance_digest`] of the shipped [`WireInstance`].
    digest: String,
    /// Fingerprint of schema + both tables' symbol matrices.
    tables_hash: u64,
    /// Pool length at ship time.
    pool_len: usize,
    /// Fingerprint of the first `pool_len` pool strings.
    pool_hash: u64,
}

/// What `plan_shipment` decided for one batch: which digest to reference
/// and whether the base must ride along inline.
struct ShipPlan {
    digest: String,
    /// Pool length of the shipped base — the split point for inline
    /// re-ships after a worker cache miss.
    base_pool_len: usize,
    /// `Some` on first sight of the instance (ship inline, workers cache
    /// it); `None` when workers are expected to hold the base already.
    base: Option<WireInstance>,
    /// Pool strings interned past the base since it shipped.
    extra: Vec<String>,
}

impl ShipPlan {
    fn spec(&self) -> WireInstanceSpec {
        match &self.base {
            Some(instance) => WireInstanceSpec::Inline {
                digest: self.digest.clone(),
                instance: instance.clone(),
                extra_pool: self.extra.clone(),
            },
            None => WireInstanceSpec::Cached {
                digest: self.digest.clone(),
                extra_pool: self.extra.clone(),
            },
        }
    }
}

/// The current instance serialized and split at the shipped base's pool
/// length: `(base, extra)` such that the base digests to the plan's
/// digest and `extra` is this batch's pool delta. Built lazily, only
/// when a worker reports a cache miss and needs an inline re-ship.
fn split_at_base(instance: &ProblemInstance, base_pool_len: usize) -> (WireInstance, Vec<String>) {
    let mut base = WireInstance::from_instance(instance);
    let extra = base.pool.split_off(base_pool_len);
    (base, extra)
}

/// 64-bit FNV-1a, streamed. Hand-rolled for the same reason as
/// [`instance_digest`]: the standard library's hashers are randomly
/// keyed per process, and these fingerprints index a cross-batch cache.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fingerprint of the first `len` pool strings, order-sensitive.
fn hash_pool_prefix(instance: &ProblemInstance, len: usize) -> u64 {
    let mut hash = FNV_OFFSET;
    for (_, s) in instance.pool.iter().take(len) {
        fnv1a(&mut hash, s.as_bytes());
        fnv1a(&mut hash, &[0xff]); // separator: ("ab","c") ≠ ("a","bc")
    }
    hash
}

/// Fingerprint of schema names and both tables' symbol matrices — the
/// parts of an instance that are frozen for the whole search (only the
/// pool grows).
fn hash_tables(instance: &ProblemInstance) -> u64 {
    let mut hash = FNV_OFFSET;
    for name in instance.schema().names() {
        fnv1a(&mut hash, name.as_bytes());
        fnv1a(&mut hash, &[0xff]);
    }
    for table in [&instance.source, &instance.target] {
        fnv1a(&mut hash, &(table.len() as u64).to_le_bytes());
        for row in table.rows() {
            for sym in row.iter() {
                fnv1a(&mut hash, &sym.0.to_le_bytes());
            }
        }
    }
    hash
}

impl std::fmt::Debug for ExpansionFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionFleet")
            .field("workers", &self.workers)
            .field("batch", &self.opts.batch)
            .finish_non_exhaustive()
    }
}

impl ExpansionFleet {
    /// Spawn the fleet: `workers` threads (in-process backend) or
    /// `affidavit-worker` child processes (spool / TCP backends), all
    /// idle-polling the queue until the first batch arrives.
    pub fn new(opts: ExpansionFleetOptions) -> Result<ExpansionFleet, String> {
        let workers = resolve_parallelism(opts.workers);
        let queue = match &opts.backend {
            DistBackend::InProcess => {
                let queue = Arc::new(InProcessQueue::new());
                let threads = (0..workers)
                    .map(|w| {
                        let queue = Arc::clone(&queue);
                        let poll = opts.poll;
                        std::thread::spawn(move || {
                            crate::worker::run_worker(&*queue, &format!("spec-{w}"), poll)
                        })
                    })
                    .collect();
                FleetQueue::InProcess { queue, threads }
            }
            DistBackend::ChildProcesses {
                broker_dir,
                worker_bin,
            } => {
                static RUN: AtomicU64 = AtomicU64::new(0);
                let (root, owned) = match broker_dir {
                    Some(dir) => (dir.clone(), false),
                    None => {
                        let nanos = std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_nanos())
                            .unwrap_or(0);
                        let dir = std::env::temp_dir().join(format!(
                            "affidavit-spec-{}-{}-{nanos}",
                            std::process::id(),
                            RUN.fetch_add(1, Ordering::Relaxed)
                        ));
                        (dir, true)
                    }
                };
                let bin = match worker_bin {
                    Some(path) => path.clone(),
                    None => worker_binary()?,
                };
                let broker = FsBroker::open(&root)?;
                broker.ensure_fresh()?;
                let endpoint = WorkerEndpoint::Spool(root.clone());
                let children = spawn_workers(&bin, &endpoint, workers, opts.poll)?;
                FleetQueue::Fs {
                    broker,
                    root,
                    owned,
                    children,
                }
            }
            DistBackend::Tcp { listen, worker_bin } => {
                let bin = match worker_bin {
                    Some(path) => path.clone(),
                    None => worker_binary()?,
                };
                let broker =
                    Broker::new(TcpBroker::bind(listen.as_deref().unwrap_or("127.0.0.1:0"))?);
                let endpoint = WorkerEndpoint::Tcp(broker.transport().local_addr().to_string());
                let children = spawn_workers(&bin, &endpoint, workers, opts.poll)?;
                FleetQueue::Tcp { broker, children }
            }
        };
        Ok(ExpansionFleet {
            opts,
            queue,
            next_id: AtomicU64::new(0),
            workers,
            shipped: Mutex::new(Vec::new()),
        })
    }

    /// A fleet with default options over the given backend.
    pub fn with_backend(backend: DistBackend, workers: usize) -> Result<ExpansionFleet, String> {
        ExpansionFleet::new(ExpansionFleetOptions {
            backend,
            workers,
            ..ExpansionFleetOptions::default()
        })
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The TCP listener address (for externally attaching workers), if
    /// the fleet runs on the TCP backend.
    pub fn tcp_addr(&self) -> Option<String> {
        match &self.queue {
            FleetQueue::Tcp { broker, .. } => Some(broker.transport().local_addr().to_string()),
            _ => None,
        }
    }

    /// Steal-loop counters accumulated over the fleet's lifetime.
    pub fn stats(&self) -> Result<QueueStats, String> {
        self.queue.queue().stats()
    }

    /// Decide how this batch names its instance: reuse a shipped base
    /// (digest + appended pool delta) when the tables match one and the
    /// pool still extends its prefix, otherwise serialize and register a
    /// fresh base to ship inline. The delta stays honest because the
    /// driver's pool is append-only during a search; once it outgrows
    /// the base by more than a quarter (floor 64 strings), re-basing is
    /// cheaper than repeating the delta on every job.
    fn plan_shipment(&self, instance: &ProblemInstance) -> ShipPlan {
        let tables = hash_tables(instance);
        let pool_len = instance.pool.len();
        let mut shipped = self.shipped.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = shipped.iter().position(|b| b.tables_hash == tables) {
            let base = &shipped[pos];
            let extendable = pool_len >= base.pool_len
                && hash_pool_prefix(instance, base.pool_len) == base.pool_hash;
            let delta_small = pool_len - base.pool_len.min(pool_len) <= (base.pool_len / 4).max(64);
            if extendable && delta_small {
                let extra = instance
                    .pool
                    .iter()
                    .skip(base.pool_len)
                    .map(|(_, s)| s.to_owned())
                    .collect();
                let plan = ShipPlan {
                    digest: base.digest.clone(),
                    base_pool_len: base.pool_len,
                    base: None,
                    extra,
                };
                let entry = shipped.remove(pos);
                shipped.push(entry); // freshen LRU position
                return plan;
            }
            // Same tables but a foreign or outgrown pool: re-base.
            shipped.remove(pos);
        }
        let wire = WireInstance::from_instance(instance);
        let digest = instance_digest(&wire);
        shipped.push(ShippedBase {
            digest: digest.clone(),
            tables_hash: tables,
            pool_len,
            pool_hash: hash_pool_prefix(instance, pool_len),
        });
        if shipped.len() > SHIPPED_BASES {
            shipped.remove(0);
        }
        ShipPlan {
            digest,
            base_pool_len: pool_len,
            base: Some(wire),
            extra: Vec::new(),
        }
    }

    fn run_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
    ) -> Result<Vec<PortableExpansion>, String> {
        let _span = affidavit_obs::span_with(
            "dist.expansion_batch",
            vec![("requests".to_owned(), batch.len().to_string())],
        );
        let mut manifest: Vec<ManifestEntry> = Vec::new();
        let outcome = self.drive_batch(instance, cfg, batch, &mut manifest);
        // Win or lose, the queue owes us nothing further for these ids:
        // forget every job this batch published, so the persistent fleet
        // (the serve daemon holds one for its whole lifetime) retains no
        // per-batch results and a declined batch's jobs are withdrawn
        // instead of computed behind the driver's back.
        let queue = self.queue.queue();
        for entry in &manifest {
            if let Err(reason) = queue.forget(entry.id) {
                affidavit_obs::diag("dist.expansion_forget", &reason);
            }
        }
        outcome
    }

    fn drive_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
        manifest: &mut Vec<ManifestEntry>,
    ) -> Result<Vec<PortableExpansion>, String> {
        let started = Instant::now();
        let src_rows = instance.source.len();
        let tgt_rows = instance.target.len();
        let chunk = if self.opts.batch == 0 {
            batch.len().max(1)
        } else {
            self.opts.batch
        };
        let queue = self.queue.queue();
        let plan = self.plan_shipment(instance);
        // One job per chunk, ids unique across the fleet's lifetime so a
        // straggler result from an abandoned batch can never be absorbed
        // as a later batch's.
        for (i, requests) in batch.chunks(chunk).enumerate() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let job = Job {
                id,
                name: format!("expansion-{id}"),
                payload: JobPayload::Expansion {
                    instance: plan.spec(),
                    config: cfg.clone(),
                    batch: requests.iter().map(WireExpansion::from_request).collect(),
                },
            };
            queue.submit(&job)?;
            manifest.push(ManifestEntry {
                id,
                offset: i * chunk,
                len: requests.len(),
                submitted: Instant::now(),
            });
        }
        let deadline = started + self.opts.deadline;
        let mut results: BTreeMap<u64, JobResult> = BTreeMap::new();
        let mut last_requeue = Instant::now();
        // Built lazily on the first worker cache miss: the current
        // instance split at the shipped base, so the inline re-ship both
        // warms the cold worker's cache under the batch's digest and
        // carries this batch's pool delta.
        let mut inline_fallback: Option<(WireInstance, Vec<String>)> = None;
        while results.len() < manifest.len() {
            let mut fetched_new = false;
            for entry in manifest.iter_mut() {
                if results.contains_key(&entry.id) {
                    continue;
                }
                let Some(result) = queue.fetch_result(entry.id)? else {
                    continue;
                };
                fetched_new = true;
                if is_instance_miss(&result) {
                    // A cold worker (fresh attach, restart, eviction)
                    // stole a digest-only job. Withdraw the id and
                    // re-ship the same chunk inline — under a fresh id,
                    // because the miss result is already stored under
                    // this one and first-delivery-wins would pin it.
                    queue.forget(entry.id)?;
                    let (base, extra) = inline_fallback
                        .get_or_insert_with(|| split_at_base(instance, plan.base_pool_len));
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    let requests = &batch[entry.offset..entry.offset + entry.len];
                    let job = Job {
                        id,
                        name: format!("expansion-{id}"),
                        payload: JobPayload::Expansion {
                            instance: WireInstanceSpec::Inline {
                                digest: plan.digest.clone(),
                                instance: base.clone(),
                                extra_pool: extra.clone(),
                            },
                            config: cfg.clone(),
                            batch: requests.iter().map(WireExpansion::from_request).collect(),
                        },
                    };
                    queue.submit(&job)?;
                    affidavit_obs::metrics().add_counter("dist_expansion_inline_reships", 1);
                    entry.id = id;
                    entry.submitted = Instant::now();
                    continue;
                }
                affidavit_obs::metrics().observe(
                    "dist_expansion_rtt_micros",
                    entry.submitted.elapsed().as_micros() as f64,
                );
                results.insert(entry.id, result);
            }
            if fetched_new {
                queue.check_health()?;
                continue;
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "expansion batch exceeded its deadline with {}/{} results",
                    results.len(),
                    manifest.len()
                ));
            }
            if last_requeue.elapsed() >= self.opts.steal_timeout {
                last_requeue = Instant::now();
                self.queue.requeue_expired(self.opts.steal_timeout)?;
            }
            std::thread::sleep(self.opts.poll);
        }
        let mut expansions: Vec<PortableExpansion> = Vec::with_capacity(batch.len());
        for entry in manifest.iter() {
            let result = results.get(&entry.id).expect("all results fetched above");
            match &result.outcome {
                JobOutcome::Expanded {
                    expansions: wire, ..
                } => {
                    for w in wire {
                        expansions.push(w.to_portable(src_rows, tgt_rows)?);
                    }
                }
                JobOutcome::Failed { reason } => {
                    return Err(format!("expansion job {} failed: {reason}", entry.id))
                }
                JobOutcome::Explained { .. } => {
                    return Err(format!(
                        "expansion job {} came back as an explanation result",
                        entry.id
                    ))
                }
            }
        }
        if expansions.len() != batch.len() {
            return Err(format!(
                "expansion batch returned {} results for {} requests",
                expansions.len(),
                batch.len()
            ));
        }
        Ok(expansions)
    }
}

/// One published chunk of the current batch: where its requests live in
/// the driver's batch and when its (current) job id was submitted — the
/// submit timestamp backs the per-job `dist_expansion_rtt_micros`
/// observation and is reset when a cache miss re-ships the chunk.
struct ManifestEntry {
    id: u64,
    offset: usize,
    len: usize,
    submitted: Instant,
}

impl ExpansionExecutor for ExpansionFleet {
    fn expand_batch(
        &self,
        instance: &ProblemInstance,
        cfg: &AffidavitConfig,
        batch: &[ExpansionRequest],
    ) -> Option<Vec<PortableExpansion>> {
        if batch.is_empty() {
            return Some(Vec::new());
        }
        match self.run_batch(instance, cfg, batch) {
            Ok(expansions) => Some(expansions),
            Err(reason) => {
                // Declining is always safe: the driver falls back to its
                // local phase-1 path and the search stays byte-identical.
                affidavit_obs::metrics().add_counter("dist_expansion_declined", 1);
                affidavit_obs::diag("dist.expansion_declined", &reason);
                None
            }
        }
    }
}

impl Drop for ExpansionFleet {
    fn drop(&mut self) {
        // Wind down whatever half of the fleet is still alive; errors are
        // moot — the queue is going away with us.
        self.queue.queue().request_shutdown().ok();
        match &mut self.queue {
            FleetQueue::InProcess { threads, .. } => {
                for handle in threads.drain(..) {
                    handle.join().ok();
                }
            }
            FleetQueue::Fs {
                children,
                root,
                owned,
                ..
            } => {
                for child in children.iter_mut() {
                    child.wait().ok();
                }
                if *owned {
                    std::fs::remove_dir_all(&*root).ok();
                }
            }
            FleetQueue::Tcp { children, .. } => {
                for child in children.iter_mut() {
                    child.wait().ok();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_core::Affidavit;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut pool,
            (0..40).map(|i| vec![format!("k{i}"), format!("{}", (i + 1) * 1000), "usd".into()]),
        );
        let t = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut pool,
            (0..40).map(|i| vec![format!("k{i}"), format!("{}", i + 1), "USD".into()]),
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    fn spec_config() -> AffidavitConfig {
        AffidavitConfig::paper_id()
            .with_trace()
            .with_speculative_width(4)
            .with_speculation_min_records(0)
    }

    #[test]
    fn in_process_fleet_reproduces_the_local_search_exactly() {
        let cfg = spec_config();
        let mut base = instance();
        let baseline = Affidavit::new(cfg.clone()).explain(&mut base);

        let fleet = ExpansionFleet::new(ExpansionFleetOptions {
            workers: 2,
            ..ExpansionFleetOptions::default()
        })
        .unwrap();
        let mut inst = instance();
        let stolen = Affidavit::new(cfg)
            .with_expansion_executor(Arc::new(fleet))
            .explain(&mut inst);

        assert_eq!(
            format!("{:?}", stolen.explanation),
            format!("{:?}", baseline.explanation)
        );
        assert_eq!(stolen.stats.polled, baseline.stats.polled);
        assert_eq!(stolen.stats.expansions, baseline.stats.expansions);
        assert_eq!(
            format!("{:?}", stolen.trace),
            format!("{:?}", baseline.trace)
        );
        // The pools grew identically — symbol numbering is part of the
        // byte-identity contract.
        let a: Vec<&str> = base.pool.iter().map(|(_, s)| s).collect();
        let b: Vec<&str> = inst.pool.iter().map(|(_, s)| s).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn the_fleet_is_reusable_across_searches() {
        let fleet = Arc::new(
            ExpansionFleet::new(ExpansionFleetOptions {
                workers: 2,
                batch: 1,
                ..ExpansionFleetOptions::default()
            })
            .unwrap(),
        );
        let cfg = spec_config();
        let mut first = instance();
        let mut second = instance();
        let a = Affidavit::new(cfg.clone())
            .with_expansion_executor(fleet.clone() as Arc<dyn ExpansionExecutor>)
            .explain(&mut first);
        let b = Affidavit::new(cfg)
            .with_expansion_executor(fleet as Arc<dyn ExpansionExecutor>)
            .explain(&mut second);
        assert_eq!(
            format!("{:?}", a.explanation),
            format!("{:?}", b.explanation)
        );
        assert_eq!(a.stats.polled, b.stats.polled);
    }

    #[test]
    fn a_persistent_fleet_retains_no_results_between_batches() {
        let fleet = Arc::new(
            ExpansionFleet::new(ExpansionFleetOptions {
                workers: 2,
                batch: 1,
                ..ExpansionFleetOptions::default()
            })
            .unwrap(),
        );
        let cfg = spec_config();
        let mut first = instance();
        let mut second = instance();
        Affidavit::new(cfg.clone())
            .with_expansion_executor(fleet.clone() as Arc<dyn ExpansionExecutor>)
            .explain(&mut first);
        Affidavit::new(cfg)
            .with_expansion_executor(fleet.clone() as Arc<dyn ExpansionExecutor>)
            .explain(&mut second);
        // The fleet outlives both searches (the serve daemon holds one
        // for its whole lifetime): every absorbed batch must have been
        // forgotten, or results pile up until the daemon OOMs.
        let FleetQueue::InProcess { queue, .. } = &fleet.queue else {
            panic!("in-process fleet expected");
        };
        assert_eq!(queue.retained_results(), 0);
        assert_eq!(queue.pending_jobs(), 0);
    }

    #[test]
    fn a_declined_batch_withdraws_its_jobs() {
        let cfg = spec_config();
        let mut base = instance();
        let baseline = Affidavit::new(cfg.clone()).explain(&mut base);

        // A zero deadline declines (almost) every batch, driving the
        // decline path: jobs are published, the deadline trips, and the
        // driver expands locally.
        let fleet = Arc::new(
            ExpansionFleet::new(ExpansionFleetOptions {
                workers: 2,
                deadline: Duration::ZERO,
                ..ExpansionFleetOptions::default()
            })
            .unwrap(),
        );
        let mut inst = instance();
        let stolen = Affidavit::new(cfg)
            .with_expansion_executor(fleet.clone() as Arc<dyn ExpansionExecutor>)
            .explain(&mut inst);
        assert_eq!(
            format!("{:?}", stolen.explanation),
            format!("{:?}", baseline.explanation)
        );
        assert_eq!(stolen.stats.polled, baseline.stats.polled);
        // Declined batches withdraw their jobs: nothing left for workers
        // to chew on, no result retained for the abandoned ids.
        let FleetQueue::InProcess { queue, .. } = &fleet.queue else {
            panic!("in-process fleet expected");
        };
        assert_eq!(queue.pending_jobs(), 0);
        assert_eq!(queue.retained_results(), 0);
    }

    #[test]
    fn shipment_plans_reuse_bases_and_carry_pool_deltas() {
        let fleet = ExpansionFleet::new(ExpansionFleetOptions {
            workers: 1,
            ..ExpansionFleetOptions::default()
        })
        .unwrap();
        let mut inst = instance();

        // First sight: the base ships inline.
        let first = fleet.plan_shipment(&inst);
        assert!(first.base.is_some());
        assert!(first.extra.is_empty());

        // Same instance again: digest-only, no delta.
        let second = fleet.plan_shipment(&inst);
        assert_eq!(second.digest, first.digest);
        assert!(second.base.is_none());
        assert!(second.extra.is_empty());

        // The pool grew append-only (as it does during a search): still
        // digest-only, with the new strings riding as the delta.
        inst.pool.intern("speculated-value");
        let third = fleet.plan_shipment(&inst);
        assert_eq!(third.digest, first.digest);
        assert!(third.base.is_none());
        assert_eq!(third.extra, vec!["speculated-value".to_owned()]);

        // A different instance (other tables) re-bases under a new digest.
        let mut other_pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut other_pool,
            (0..4).map(|i| vec![format!("x{i}"), format!("{i}"), "eur".into()]),
        );
        let t = Table::from_rows(
            Schema::new(["k", "Val", "Unit"]),
            &mut other_pool,
            (0..4).map(|i| vec![format!("x{i}"), format!("{}", i * 2), "EUR".into()]),
        );
        let other = ProblemInstance::new(s, t, other_pool).unwrap();
        let fourth = fleet.plan_shipment(&other);
        assert_ne!(fourth.digest, first.digest);
        assert!(fourth.base.is_some());
    }
}
