//! The versioned, self-describing wire format.
//!
//! Everything that crosses a process boundary is wrapped in an
//! [`Envelope`]: a JSON object carrying the format name
//! ([`WIRE_FORMAT`]), the format version ([`WIRE_VERSION`]), the payload
//! kind (`"job"` or `"result"`) and the payload body. Decoding checks all
//! three before touching the body, so a worker from a different build
//! generation fails loudly instead of silently mis-reading bytes.
//!
//! The payload vocabulary:
//!
//! * [`WireInstance`] — a [`ProblemInstance`] as schema names, the value
//!   pool's strings in interning order, and the two snapshots as rows of
//!   pool indices. Decoding re-interns the strings in order, so symbol
//!   numbering on the worker is identical to the coordinator's pool at
//!   ship time — the precondition for merging results back with
//!   [`SymRemap`](affidavit_table::SymRemap).
//! * [`WireFunction`] / [`WireSegment`] — an
//!   [`AttrFunction`] with its interned parameters as raw pool indices
//!   and its exact numerics (`i128`, [`Decimal`]) as strings, since JSON
//!   numbers cannot carry them losslessly.
//!
//! The format is covered by round-trip tests and a golden-bytes fixture
//! (`tests/properties_dist.rs`): accidental changes to field names, field
//! order or numeric encodings fail CI instead of stranding deployed
//! workers.

use affidavit_core::ProblemInstance;
use affidavit_functions::datetime::DateFormat;
use affidavit_functions::substring::{Segment, TokenProgram};
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{Decimal, Rational, Schema, Sym, Table, ValuePool};
use serde::{Deserialize, Serialize, Value};

/// Format discriminator carried by every envelope.
pub const WIRE_FORMAT: &str = "affidavit-dist";

/// Version of the wire vocabulary this build speaks.
pub const WIRE_VERSION: u64 = 1;

/// The self-describing outer wrapper of every wire message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Always [`WIRE_FORMAT`].
    pub format: String,
    /// Always [`WIRE_VERSION`] for messages this build produces.
    pub version: u64,
    /// Payload kind: `"job"` or `"result"`.
    pub kind: String,
    /// The payload itself.
    pub body: Value,
}

/// Wrap a payload tree into an envelope and render it as compact JSON.
pub fn seal(kind: &str, body: Value) -> String {
    let envelope = Envelope {
        format: WIRE_FORMAT.to_owned(),
        version: WIRE_VERSION,
        kind: kind.to_owned(),
        body,
    };
    serde_json::to_string(&envelope).expect("envelopes are serializable")
}

/// Parse an envelope, verify format/version/kind, and return the body.
pub fn unseal(text: &str, expect_kind: &str) -> Result<Value, String> {
    let envelope: Envelope = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if envelope.format != WIRE_FORMAT {
        return Err(format!(
            "not an {WIRE_FORMAT} message (format {:?})",
            envelope.format
        ));
    }
    if envelope.version != WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {} (this build speaks {WIRE_VERSION})",
            envelope.version
        ));
    }
    if envelope.kind != expect_kind {
        return Err(format!(
            "expected a {expect_kind:?} message, got {:?}",
            envelope.kind
        ));
    }
    Ok(envelope.body)
}

/// A serialized [`ProblemInstance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireInstance {
    /// Column names, in order.
    pub schema: Vec<String>,
    /// The value pool's distinct strings, in interning order. Row cells
    /// index into this array; decoding re-interns in order, reproducing
    /// the coordinator's symbol numbering exactly.
    pub pool: Vec<String>,
    /// Source snapshot rows as pool indices.
    pub source: Vec<Vec<u32>>,
    /// Target snapshot rows as pool indices.
    pub target: Vec<Vec<u32>>,
}

impl WireInstance {
    /// Serialize an instance. The pool may be larger than the set of
    /// symbols the rows reference (it usually is — staging interned both
    /// snapshots into it); the whole prefix ships so worker symbol
    /// numbering matches the coordinator's.
    pub fn from_instance(instance: &ProblemInstance) -> WireInstance {
        let rows = |table: &Table| {
            table
                .rows()
                .map(|r| r.iter().map(|s| s.0).collect())
                .collect()
        };
        WireInstance {
            schema: instance.schema().names().map(str::to_owned).collect(),
            pool: instance.pool.iter().map(|(_, s)| s.to_owned()).collect(),
            source: rows(&instance.source),
            target: rows(&instance.target),
        }
    }

    /// The pool length at ship time — results reference symbols below this
    /// as-is and symbols at or above it through their `new_strings` list.
    pub fn base_len(&self) -> usize {
        self.pool.len()
    }

    /// Rebuild the instance in a fresh RAM pool, validating that the pool
    /// has no duplicate strings (which would shift symbol numbering) and
    /// that every row has the schema's arity and only in-range symbols.
    pub fn decode(&self) -> Result<ProblemInstance, String> {
        let mut pool = ValuePool::with_capacity(self.pool.len());
        for (i, s) in self.pool.iter().enumerate() {
            let sym = pool.intern(s);
            if sym.index() != i {
                return Err(format!(
                    "wire pool entry {i} duplicates entry {}: {s:?}",
                    sym.index()
                ));
            }
        }
        let arity = self.schema.len();
        let limit = self.pool.len() as u32;
        // Build the columns directly: one gather pass per row validates
        // and transposes into per-attribute buffers, no per-row Record
        // allocation.
        let decode_table = |rows: &[Vec<u32>], which: &str| -> Result<Table, String> {
            let mut columns: Vec<Vec<Sym>> =
                (0..arity).map(|_| Vec::with_capacity(rows.len())).collect();
            for (i, row) in rows.iter().enumerate() {
                if row.len() != arity {
                    return Err(format!(
                        "{which} row {i} has {} cells, schema has {arity}",
                        row.len()
                    ));
                }
                if let Some(bad) = row.iter().find(|&&s| s >= limit) {
                    return Err(format!(
                        "{which} row {i} references symbol {bad} outside the pool (len {limit})"
                    ));
                }
                for (col, &s) in columns.iter_mut().zip(row) {
                    col.push(Sym(s));
                }
            }
            Ok(Table::from_columns(
                Schema::new(self.schema.iter().cloned()),
                columns,
            ))
        };
        let source = decode_table(&self.source, "source")?;
        let target = decode_table(&self.target, "target")?;
        ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())
    }
}

/// An [`AttrFunction`] on the wire: interned parameters as raw pool
/// indices (meaningful relative to the job's [`WireInstance`] pool plus
/// the result's `new_strings`), exact numerics as strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WireFunction {
    /// `x ↦ x`.
    Identity,
    /// `x ↦ UPPER(x)`.
    Uppercase,
    /// `x ↦ lower(x)`.
    Lowercase,
    /// `x ↦ value`.
    Constant {
        /// Pool index of the constant.
        value: u32,
    },
    /// `x ↦ x + y`.
    Add {
        /// The addend in canonical decimal notation.
        y: String,
    },
    /// `x ↦ x · num/den`.
    Scale {
        /// Numerator (stringified `i128`).
        num: String,
        /// Denominator (stringified `i128`, positive).
        den: String,
    },
    /// Replace the first `|mask|` characters with the mask.
    FrontMask {
        /// Pool index of the mask.
        mask: u32,
    },
    /// Replace the last `|mask|` characters with the mask.
    BackMask {
        /// Pool index of the mask.
        mask: u32,
    },
    /// Strip leading repetitions of `ch`.
    FrontCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// Strip trailing repetitions of `ch`.
    BackCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// `x ↦ y ◦ x`.
    Prefix {
        /// Pool index of the prefix.
        y: u32,
    },
    /// `x ↦ x ◦ y`.
    Suffix {
        /// Pool index of the suffix.
        y: u32,
    },
    /// `y ◦ x ↦ z ◦ x`, identity otherwise.
    PrefixReplace {
        /// Pool index of the matched prefix.
        y: u32,
        /// Pool index of the replacement.
        z: u32,
    },
    /// `x ◦ y ↦ x ◦ z`, identity otherwise.
    SuffixReplace {
        /// Pool index of the matched suffix.
        y: u32,
        /// Pool index of the replacement.
        z: u32,
    },
    /// Date format conversion.
    DateConvert {
        /// Source format.
        from: DateFormat,
        /// Target format.
        to: DateFormat,
    },
    /// Zero-pad digit strings to `width`.
    ZeroPad {
        /// Target width in characters.
        width: u32,
    },
    /// Insert a thousands separator.
    ThousandsSep {
        /// The separator character.
        sep: char,
    },
    /// Remove a thousands separator.
    SepStrip {
        /// The separator character.
        sep: char,
    },
    /// Round to `places` fraction digits.
    Round {
        /// Fraction digits kept.
        places: u32,
    },
    /// FlashFill-lite token program.
    TokenProgram {
        /// The program's segments.
        segments: Vec<WireSegment>,
    },
    /// Explicit value mapping (identity fallback).
    Map {
        /// `(input, output)` pool-index pairs.
        entries: Vec<(u32, u32)>,
    },
}

/// One token-program segment on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WireSegment {
    /// A literal glue string (pool index).
    Literal {
        /// Pool index of the literal.
        sym: u32,
    },
    /// A token reference: 0-based from the front, or negative from the
    /// back (`-1` = last token).
    Token {
        /// The token index.
        index: i32,
    },
}

impl WireFunction {
    /// Serialize a function. No pool is needed — symbols cross the wire
    /// as raw indices.
    pub fn from_attr(f: &AttrFunction) -> WireFunction {
        match f {
            AttrFunction::Identity => WireFunction::Identity,
            AttrFunction::Uppercase => WireFunction::Uppercase,
            AttrFunction::Lowercase => WireFunction::Lowercase,
            AttrFunction::Constant(v) => WireFunction::Constant { value: v.0 },
            AttrFunction::Add(y) => WireFunction::Add { y: y.to_string() },
            AttrFunction::Scale(r) => WireFunction::Scale {
                num: r.num().to_string(),
                den: r.den().to_string(),
            },
            AttrFunction::FrontMask(m) => WireFunction::FrontMask { mask: m.0 },
            AttrFunction::BackMask(m) => WireFunction::BackMask { mask: m.0 },
            AttrFunction::FrontCharTrim(c) => WireFunction::FrontCharTrim { ch: *c },
            AttrFunction::BackCharTrim(c) => WireFunction::BackCharTrim { ch: *c },
            AttrFunction::Prefix(y) => WireFunction::Prefix { y: y.0 },
            AttrFunction::Suffix(y) => WireFunction::Suffix { y: y.0 },
            AttrFunction::PrefixReplace(y, z) => WireFunction::PrefixReplace { y: y.0, z: z.0 },
            AttrFunction::SuffixReplace(y, z) => WireFunction::SuffixReplace { y: y.0, z: z.0 },
            AttrFunction::DateConvert(from, to) => WireFunction::DateConvert {
                from: *from,
                to: *to,
            },
            AttrFunction::ZeroPad(width) => WireFunction::ZeroPad { width: *width },
            AttrFunction::ThousandsSep(sep) => WireFunction::ThousandsSep { sep: *sep },
            AttrFunction::SepStrip(sep) => WireFunction::SepStrip { sep: *sep },
            AttrFunction::Round(places) => WireFunction::Round { places: *places },
            AttrFunction::TokenProgram(prog) => WireFunction::TokenProgram {
                segments: prog
                    .segments()
                    .iter()
                    .map(|seg| match *seg {
                        Segment::Literal(l) => WireSegment::Literal { sym: l.0 },
                        Segment::Token {
                            idx,
                            from_end: false,
                        } => WireSegment::Token { index: idx as i32 },
                        Segment::Token {
                            idx,
                            from_end: true,
                        } => WireSegment::Token {
                            index: -(idx as i32) - 1,
                        },
                    })
                    .collect(),
            },
            AttrFunction::Map(m) => WireFunction::Map {
                entries: m.entries().iter().map(|&(k, v)| (k.0, v.0)).collect(),
            },
        }
    }

    /// Rebuild the interned function, validating every symbol against the
    /// worker-side pool length (shipped prefix + new strings). The caller
    /// rewrites the symbols into its own pool afterwards via
    /// [`AttrFunction::remap`].
    pub fn to_attr(&self, pool_len: usize) -> Result<AttrFunction, String> {
        let sym = |s: &u32| -> Result<Sym, String> {
            if (*s as usize) < pool_len {
                Ok(Sym(*s))
            } else {
                Err(format!(
                    "function references symbol {s} outside the worker pool (len {pool_len})"
                ))
            }
        };
        Ok(match self {
            WireFunction::Identity => AttrFunction::Identity,
            WireFunction::Uppercase => AttrFunction::Uppercase,
            WireFunction::Lowercase => AttrFunction::Lowercase,
            WireFunction::Constant { value } => AttrFunction::Constant(sym(value)?),
            WireFunction::Add { y } => {
                AttrFunction::Add(Decimal::parse(y).ok_or_else(|| format!("bad addend {y:?}"))?)
            }
            WireFunction::Scale { num, den } => {
                let num: i128 = num.parse().map_err(|_| format!("bad numerator {num:?}"))?;
                let den: i128 = den
                    .parse()
                    .map_err(|_| format!("bad denominator {den:?}"))?;
                AttrFunction::Scale(
                    Rational::new(num, den).ok_or_else(|| "zero denominator".to_owned())?,
                )
            }
            WireFunction::FrontMask { mask } => AttrFunction::FrontMask(sym(mask)?),
            WireFunction::BackMask { mask } => AttrFunction::BackMask(sym(mask)?),
            WireFunction::FrontCharTrim { ch } => AttrFunction::FrontCharTrim(*ch),
            WireFunction::BackCharTrim { ch } => AttrFunction::BackCharTrim(*ch),
            WireFunction::Prefix { y } => AttrFunction::Prefix(sym(y)?),
            WireFunction::Suffix { y } => AttrFunction::Suffix(sym(y)?),
            WireFunction::PrefixReplace { y, z } => AttrFunction::PrefixReplace(sym(y)?, sym(z)?),
            WireFunction::SuffixReplace { y, z } => AttrFunction::SuffixReplace(sym(y)?, sym(z)?),
            WireFunction::DateConvert { from, to } => AttrFunction::DateConvert(*from, *to),
            WireFunction::ZeroPad { width } => AttrFunction::ZeroPad(*width),
            WireFunction::ThousandsSep { sep } => AttrFunction::ThousandsSep(*sep),
            WireFunction::SepStrip { sep } => AttrFunction::SepStrip(*sep),
            WireFunction::Round { places } => AttrFunction::Round(*places),
            WireFunction::TokenProgram { segments } => {
                let segs = segments
                    .iter()
                    .map(|seg| {
                        Ok(match seg {
                            WireSegment::Literal { sym: s } => Segment::Literal(sym(s)?),
                            WireSegment::Token { index } if *index >= 0 && *index < 256 => {
                                Segment::Token {
                                    idx: *index as u8,
                                    from_end: false,
                                }
                            }
                            WireSegment::Token { index } if *index < 0 && *index >= -256 => {
                                Segment::Token {
                                    idx: (-*index - 1) as u8,
                                    from_end: true,
                                }
                            }
                            WireSegment::Token { index } => {
                                return Err(format!("token index {index} out of range"))
                            }
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                AttrFunction::TokenProgram(
                    TokenProgram::new(segs).ok_or_else(|| "degenerate token program".to_owned())?,
                )
            }
            WireFunction::Map { entries } => {
                let pairs = entries
                    .iter()
                    .map(|(k, v)| Ok((sym(k)?, sym(v)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                AttrFunction::Map(ValueMap::from_pairs(pairs))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table};

    fn sample_instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["80000", "IBM"], vec!["65", "SAP"]],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["80", "IBM"], vec!["0.065", "SAP"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn instance_roundtrips_with_identical_numbering() {
        let instance = sample_instance();
        let wire = WireInstance::from_instance(&instance);
        let back = wire.decode().unwrap();
        assert_eq!(back.pool.len(), instance.pool.len());
        for i in 0..instance.pool.len() {
            let sym = Sym(i as u32);
            assert_eq!(back.pool.get(sym), instance.pool.get(sym));
        }
        assert_eq!(
            WireInstance::from_instance(&back),
            wire,
            "re-encoding must be a fixed point"
        );
    }

    #[test]
    fn decode_rejects_malformed_instances() {
        let instance = sample_instance();
        let wire = WireInstance::from_instance(&instance);

        let mut dup = wire.clone();
        dup.pool.push(dup.pool[0].clone());
        assert!(dup.decode().unwrap_err().contains("duplicates"));

        let mut bad_sym = wire.clone();
        bad_sym.source[0][0] = 999;
        assert!(bad_sym.decode().unwrap_err().contains("outside the pool"));

        let mut bad_arity = wire.clone();
        bad_arity.target[1].pop();
        assert!(bad_arity.decode().unwrap_err().contains("cells"));
    }

    #[test]
    fn envelope_rejects_foreign_messages() {
        let body = Value::Object(vec![]);
        let text = seal("job", body.clone());
        assert!(unseal(&text, "job").is_ok());
        assert!(unseal(&text, "result").unwrap_err().contains("expected"));
        let alien = text.replace("affidavit-dist", "other-format");
        assert!(unseal(&alien, "job").unwrap_err().contains("format"));
        let future = text.replace("\"version\":1", "\"version\":2");
        assert!(unseal(&future, "job")
            .unwrap_err()
            .contains("unsupported wire version"));
    }

    #[test]
    fn functions_roundtrip_without_a_pool() {
        let mut pool = ValuePool::new();
        let all = vec![
            AttrFunction::Identity,
            AttrFunction::Constant(pool.intern("c")),
            AttrFunction::Add(Decimal::parse("-2.5").unwrap()),
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::PrefixReplace(pool.intern("a"), pool.intern("b")),
            AttrFunction::DateConvert(DateFormat::YyyyMmDd, DateFormat::IsoDashed),
            AttrFunction::TokenProgram(
                TokenProgram::new(vec![
                    Segment::Token {
                        idx: 0,
                        from_end: true,
                    },
                    Segment::Literal(pool.intern("-")),
                    Segment::Token {
                        idx: 1,
                        from_end: false,
                    },
                ])
                .unwrap(),
            ),
            AttrFunction::Map(ValueMap::from_pairs([
                (pool.intern("1"), pool.intern("one")),
                (pool.intern("2"), pool.intern("two")),
            ])),
        ];
        for f in all {
            let wire = WireFunction::from_attr(&f);
            let json = serde_json::to_string(&wire).unwrap();
            let back: WireFunction = serde_json::from_str(&json).unwrap();
            assert_eq!(back, wire);
            let rebuilt = back.to_attr(pool.len()).unwrap();
            assert_eq!(rebuilt, f, "syms must survive the wire exactly");
        }
    }

    #[test]
    fn function_decode_checks_symbol_bounds() {
        let wire = WireFunction::Constant { value: 7 };
        assert!(wire.to_attr(7).is_err());
        assert!(wire.to_attr(8).is_ok());
    }
}
