//! The versioned, self-describing wire format.
//!
//! Everything that crosses a process boundary is wrapped in an
//! [`Envelope`]: a JSON object carrying the format name
//! ([`WIRE_FORMAT`]), the format version ([`WIRE_VERSION`]), the payload
//! kind (`"job"` or `"result"`) and the payload body. Decoding checks all
//! three before touching the body, so a worker from a different build
//! generation fails loudly instead of silently mis-reading bytes.
//!
//! The payload vocabulary:
//!
//! * [`WireInstance`] — a [`ProblemInstance`] as schema names, the value
//!   pool's strings in interning order, and the two snapshots as rows of
//!   pool indices. Decoding re-interns the strings in order, so symbol
//!   numbering on the worker is identical to the coordinator's pool at
//!   ship time — the precondition for merging results back with
//!   [`SymRemap`](affidavit_table::SymRemap).
//! * [`WireFunction`] / [`WireSegment`] — an
//!   [`AttrFunction`] with its interned parameters as raw pool indices
//!   and its exact numerics (`i128`, [`Decimal`]) as strings, since JSON
//!   numbers cannot carry them losslessly.
//! * [`WireExpansion`] / [`WireExpansionResult`] (version 2) — one
//!   speculated frontier expansion as stealable work: the polled
//!   [`WireState`] plus its pre-drawn alignment on the way out, the
//!   [portable expansion](affidavit_core::expansion) on the way back.
//!   Costs cross the wire as stringified `f64::to_bits` — byte-identity
//!   of the search depends on them, and JSON float printing does not.
//! * [`WireInstanceSpec`] (version 3) — how an expansion job names its
//!   instance: inline on first sight (content-addressed by
//!   [`instance_digest`]), by digest plus an appended pool delta on
//!   every later job, so the instance crosses the transport once per
//!   fleet attachment instead of once per job.
//!
//! The format is covered by round-trip tests and a golden-bytes fixture
//! (`tests/properties_dist.rs`): accidental changes to field names, field
//! order or numeric encodings fail CI instead of stranding deployed
//! workers.

use affidavit_blocking::{Block, Blocking};
use affidavit_core::state::{Assignment, SearchState};
use affidavit_core::{
    ExpansionRequest, PortableAttrExpansion, PortableChild, PortableExpansion, ProblemInstance,
};
use affidavit_functions::datetime::DateFormat;
use affidavit_functions::substring::{Segment, TokenProgram};
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{Decimal, Rational, RecordId, Schema, Sym, Table, ValuePool};
use serde::{Deserialize, Serialize, Value};

/// Format discriminator carried by every envelope.
pub const WIRE_FORMAT: &str = "affidavit-dist";

/// Version of the wire vocabulary this build speaks. Version 2 added the
/// expansion-job vocabulary ([`WireExpansion`], [`WireExpansionResult`])
/// and the `speculation_min_records` configuration field. Version 3 made
/// expansion jobs reference their instance through [`WireInstanceSpec`] —
/// by content digest with an appended pool delta, shipped inline only on
/// first sight or after a worker-side cache miss.
pub const WIRE_VERSION: u64 = 3;

/// The self-describing outer wrapper of every wire message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Always [`WIRE_FORMAT`].
    pub format: String,
    /// Always [`WIRE_VERSION`] for messages this build produces.
    pub version: u64,
    /// Payload kind: `"job"` or `"result"`.
    pub kind: String,
    /// The payload itself.
    pub body: Value,
}

/// Wrap a payload tree into an envelope and render it as compact JSON.
pub fn seal(kind: &str, body: Value) -> String {
    let envelope = Envelope {
        format: WIRE_FORMAT.to_owned(),
        version: WIRE_VERSION,
        kind: kind.to_owned(),
        body,
    };
    serde_json::to_string(&envelope).expect("envelopes are serializable")
}

/// Parse an envelope, verify format/version/kind, and return the body.
pub fn unseal(text: &str, expect_kind: &str) -> Result<Value, String> {
    let envelope: Envelope = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if envelope.format != WIRE_FORMAT {
        return Err(format!(
            "not an {WIRE_FORMAT} message (format {:?})",
            envelope.format
        ));
    }
    if envelope.version != WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {} (this build speaks {WIRE_VERSION})",
            envelope.version
        ));
    }
    if envelope.kind != expect_kind {
        return Err(format!(
            "expected a {expect_kind:?} message, got {:?}",
            envelope.kind
        ));
    }
    Ok(envelope.body)
}

/// A serialized [`ProblemInstance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireInstance {
    /// Column names, in order.
    pub schema: Vec<String>,
    /// The value pool's distinct strings, in interning order. Row cells
    /// index into this array; decoding re-interns in order, reproducing
    /// the coordinator's symbol numbering exactly.
    pub pool: Vec<String>,
    /// Source snapshot rows as pool indices.
    pub source: Vec<Vec<u32>>,
    /// Target snapshot rows as pool indices.
    pub target: Vec<Vec<u32>>,
}

impl WireInstance {
    /// Serialize an instance. The pool may be larger than the set of
    /// symbols the rows reference (it usually is — staging interned both
    /// snapshots into it); the whole prefix ships so worker symbol
    /// numbering matches the coordinator's.
    pub fn from_instance(instance: &ProblemInstance) -> WireInstance {
        let rows = |table: &Table| {
            table
                .rows()
                .map(|r| r.iter().map(|s| s.0).collect())
                .collect()
        };
        WireInstance {
            schema: instance.schema().names().map(str::to_owned).collect(),
            pool: instance.pool.iter().map(|(_, s)| s.to_owned()).collect(),
            source: rows(&instance.source),
            target: rows(&instance.target),
        }
    }

    /// The pool length at ship time — results reference symbols below this
    /// as-is and symbols at or above it through their `new_strings` list.
    pub fn base_len(&self) -> usize {
        self.pool.len()
    }

    /// Rebuild the instance in a fresh RAM pool, validating that the pool
    /// has no duplicate strings (which would shift symbol numbering) and
    /// that every row has the schema's arity and only in-range symbols.
    pub fn decode(&self) -> Result<ProblemInstance, String> {
        self.decode_with_extra(&[])
    }

    /// [`WireInstance::decode`], with `extra` appended to the pool after
    /// the shipped prefix. The coordinator's pool only grows during a
    /// search, so a later batch over the same tables is exactly this base
    /// plus an appended delta — re-interning `extra` in order reproduces
    /// the coordinator's current symbol numbering without re-shipping the
    /// base. Rows may only reference the base prefix (they were encoded
    /// against it); the extras exist for expansion requests and results.
    pub fn decode_with_extra(&self, extra: &[String]) -> Result<ProblemInstance, String> {
        let mut pool = ValuePool::with_capacity(self.pool.len() + extra.len());
        for (i, s) in self.pool.iter().chain(extra).enumerate() {
            let sym = pool.intern(s);
            if sym.index() != i {
                return Err(format!(
                    "wire pool entry {i} duplicates entry {}: {s:?}",
                    sym.index()
                ));
            }
        }
        let arity = self.schema.len();
        let limit = self.pool.len() as u32;
        // Build the columns directly: one gather pass per row validates
        // and transposes into per-attribute buffers, no per-row Record
        // allocation.
        let decode_table = |rows: &[Vec<u32>], which: &str| -> Result<Table, String> {
            let mut columns: Vec<Vec<Sym>> =
                (0..arity).map(|_| Vec::with_capacity(rows.len())).collect();
            for (i, row) in rows.iter().enumerate() {
                if row.len() != arity {
                    return Err(format!(
                        "{which} row {i} has {} cells, schema has {arity}",
                        row.len()
                    ));
                }
                if let Some(bad) = row.iter().find(|&&s| s >= limit) {
                    return Err(format!(
                        "{which} row {i} references symbol {bad} outside the pool (len {limit})"
                    ));
                }
                for (col, &s) in columns.iter_mut().zip(row) {
                    col.push(Sym(s));
                }
            }
            Ok(Table::from_columns(
                Schema::new(self.schema.iter().cloned()),
                columns,
            ))
        };
        let source = decode_table(&self.source, "source")?;
        let target = decode_table(&self.target, "target")?;
        ProblemInstance::new(source, target, pool).map_err(|e| e.to_string())
    }
}

/// How an expansion job names its [`WireInstance`] (version 3).
///
/// The instance is by far the heaviest part of an expansion job, and the
/// speculation driver publishes jobs every iteration — so the fleet ships
/// the instance once, content-addressed by [`instance_digest`], and later
/// jobs carry only the digest plus the pool strings interned since ship
/// time (the coordinator's pool is append-only during a search). A worker
/// that has never seen the digest — attached mid-run, restarted, cache
/// evicted — fails the job with the
/// [`INSTANCE_MISS_PREFIX`](crate::job::INSTANCE_MISS_PREFIX) reason, and
/// the coordinator re-ships that chunk inline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "ship", rename_all = "snake_case")]
pub enum WireInstanceSpec {
    /// The full base instance rides along (first sight of these tables,
    /// or a re-ship after a worker cache miss). The worker caches it
    /// under `digest` before decoding.
    Inline {
        /// Content address of `instance` ([`instance_digest`]).
        digest: String,
        /// The base instance: tables plus the pool prefix at first ship.
        instance: WireInstance,
        /// Pool strings the coordinator interned past the base, in
        /// interning order.
        extra_pool: Vec<String>,
    },
    /// The worker is expected to hold the base under `digest` already.
    Cached {
        /// Content address of the base instance.
        digest: String,
        /// Pool strings the coordinator interned past the base, in
        /// interning order.
        extra_pool: Vec<String>,
    },
}

impl WireInstanceSpec {
    /// The content digest this spec references.
    pub fn digest(&self) -> &str {
        match self {
            WireInstanceSpec::Inline { digest, .. } | WireInstanceSpec::Cached { digest, .. } => {
                digest
            }
        }
    }
}

/// Stable content address of a serialized instance: 64-bit FNV-1a over
/// its canonical JSON encoding, rendered as 16 hex digits. Hand-rolled
/// because the digest crosses process boundaries — the standard library's
/// hashers are randomly keyed per process, so their values are not valid
/// cache keys on another machine.
pub fn instance_digest(instance: &WireInstance) -> String {
    let encoded = serde_json::to_string(instance).expect("instances are serializable");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in encoded.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// An [`AttrFunction`] on the wire: interned parameters as raw pool
/// indices (meaningful relative to the job's [`WireInstance`] pool plus
/// the result's `new_strings`), exact numerics as strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WireFunction {
    /// `x ↦ x`.
    Identity,
    /// `x ↦ UPPER(x)`.
    Uppercase,
    /// `x ↦ lower(x)`.
    Lowercase,
    /// `x ↦ value`.
    Constant {
        /// Pool index of the constant.
        value: u32,
    },
    /// `x ↦ x + y`.
    Add {
        /// The addend in canonical decimal notation.
        y: String,
    },
    /// `x ↦ x · num/den`.
    Scale {
        /// Numerator (stringified `i128`).
        num: String,
        /// Denominator (stringified `i128`, positive).
        den: String,
    },
    /// Replace the first `|mask|` characters with the mask.
    FrontMask {
        /// Pool index of the mask.
        mask: u32,
    },
    /// Replace the last `|mask|` characters with the mask.
    BackMask {
        /// Pool index of the mask.
        mask: u32,
    },
    /// Strip leading repetitions of `ch`.
    FrontCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// Strip trailing repetitions of `ch`.
    BackCharTrim {
        /// The trimmed character.
        ch: char,
    },
    /// `x ↦ y ◦ x`.
    Prefix {
        /// Pool index of the prefix.
        y: u32,
    },
    /// `x ↦ x ◦ y`.
    Suffix {
        /// Pool index of the suffix.
        y: u32,
    },
    /// `y ◦ x ↦ z ◦ x`, identity otherwise.
    PrefixReplace {
        /// Pool index of the matched prefix.
        y: u32,
        /// Pool index of the replacement.
        z: u32,
    },
    /// `x ◦ y ↦ x ◦ z`, identity otherwise.
    SuffixReplace {
        /// Pool index of the matched suffix.
        y: u32,
        /// Pool index of the replacement.
        z: u32,
    },
    /// Date format conversion.
    DateConvert {
        /// Source format.
        from: DateFormat,
        /// Target format.
        to: DateFormat,
    },
    /// Zero-pad digit strings to `width`.
    ZeroPad {
        /// Target width in characters.
        width: u32,
    },
    /// Insert a thousands separator.
    ThousandsSep {
        /// The separator character.
        sep: char,
    },
    /// Remove a thousands separator.
    SepStrip {
        /// The separator character.
        sep: char,
    },
    /// Round to `places` fraction digits.
    Round {
        /// Fraction digits kept.
        places: u32,
    },
    /// FlashFill-lite token program.
    TokenProgram {
        /// The program's segments.
        segments: Vec<WireSegment>,
    },
    /// Explicit value mapping (identity fallback).
    Map {
        /// `(input, output)` pool-index pairs.
        entries: Vec<(u32, u32)>,
    },
}

/// One token-program segment on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WireSegment {
    /// A literal glue string (pool index).
    Literal {
        /// Pool index of the literal.
        sym: u32,
    },
    /// A token reference: 0-based from the front, or negative from the
    /// back (`-1` = last token).
    Token {
        /// The token index.
        index: i32,
    },
}

impl WireFunction {
    /// Serialize a function. No pool is needed — symbols cross the wire
    /// as raw indices.
    pub fn from_attr(f: &AttrFunction) -> WireFunction {
        match f {
            AttrFunction::Identity => WireFunction::Identity,
            AttrFunction::Uppercase => WireFunction::Uppercase,
            AttrFunction::Lowercase => WireFunction::Lowercase,
            AttrFunction::Constant(v) => WireFunction::Constant { value: v.0 },
            AttrFunction::Add(y) => WireFunction::Add { y: y.to_string() },
            AttrFunction::Scale(r) => WireFunction::Scale {
                num: r.num().to_string(),
                den: r.den().to_string(),
            },
            AttrFunction::FrontMask(m) => WireFunction::FrontMask { mask: m.0 },
            AttrFunction::BackMask(m) => WireFunction::BackMask { mask: m.0 },
            AttrFunction::FrontCharTrim(c) => WireFunction::FrontCharTrim { ch: *c },
            AttrFunction::BackCharTrim(c) => WireFunction::BackCharTrim { ch: *c },
            AttrFunction::Prefix(y) => WireFunction::Prefix { y: y.0 },
            AttrFunction::Suffix(y) => WireFunction::Suffix { y: y.0 },
            AttrFunction::PrefixReplace(y, z) => WireFunction::PrefixReplace { y: y.0, z: z.0 },
            AttrFunction::SuffixReplace(y, z) => WireFunction::SuffixReplace { y: y.0, z: z.0 },
            AttrFunction::DateConvert(from, to) => WireFunction::DateConvert {
                from: *from,
                to: *to,
            },
            AttrFunction::ZeroPad(width) => WireFunction::ZeroPad { width: *width },
            AttrFunction::ThousandsSep(sep) => WireFunction::ThousandsSep { sep: *sep },
            AttrFunction::SepStrip(sep) => WireFunction::SepStrip { sep: *sep },
            AttrFunction::Round(places) => WireFunction::Round { places: *places },
            AttrFunction::TokenProgram(prog) => WireFunction::TokenProgram {
                segments: prog
                    .segments()
                    .iter()
                    .map(|seg| match *seg {
                        Segment::Literal(l) => WireSegment::Literal { sym: l.0 },
                        Segment::Token {
                            idx,
                            from_end: false,
                        } => WireSegment::Token { index: idx as i32 },
                        Segment::Token {
                            idx,
                            from_end: true,
                        } => WireSegment::Token {
                            index: -(idx as i32) - 1,
                        },
                    })
                    .collect(),
            },
            AttrFunction::Map(m) => WireFunction::Map {
                entries: m.entries().iter().map(|&(k, v)| (k.0, v.0)).collect(),
            },
        }
    }

    /// Rebuild the interned function, validating every symbol against the
    /// worker-side pool length (shipped prefix + new strings). The caller
    /// rewrites the symbols into its own pool afterwards via
    /// [`AttrFunction::remap`].
    pub fn to_attr(&self, pool_len: usize) -> Result<AttrFunction, String> {
        let sym = |s: &u32| -> Result<Sym, String> {
            if (*s as usize) < pool_len {
                Ok(Sym(*s))
            } else {
                Err(format!(
                    "function references symbol {s} outside the worker pool (len {pool_len})"
                ))
            }
        };
        Ok(match self {
            WireFunction::Identity => AttrFunction::Identity,
            WireFunction::Uppercase => AttrFunction::Uppercase,
            WireFunction::Lowercase => AttrFunction::Lowercase,
            WireFunction::Constant { value } => AttrFunction::Constant(sym(value)?),
            WireFunction::Add { y } => {
                AttrFunction::Add(Decimal::parse(y).ok_or_else(|| format!("bad addend {y:?}"))?)
            }
            WireFunction::Scale { num, den } => {
                let num: i128 = num.parse().map_err(|_| format!("bad numerator {num:?}"))?;
                let den: i128 = den
                    .parse()
                    .map_err(|_| format!("bad denominator {den:?}"))?;
                AttrFunction::Scale(
                    Rational::new(num, den).ok_or_else(|| "zero denominator".to_owned())?,
                )
            }
            WireFunction::FrontMask { mask } => AttrFunction::FrontMask(sym(mask)?),
            WireFunction::BackMask { mask } => AttrFunction::BackMask(sym(mask)?),
            WireFunction::FrontCharTrim { ch } => AttrFunction::FrontCharTrim(*ch),
            WireFunction::BackCharTrim { ch } => AttrFunction::BackCharTrim(*ch),
            WireFunction::Prefix { y } => AttrFunction::Prefix(sym(y)?),
            WireFunction::Suffix { y } => AttrFunction::Suffix(sym(y)?),
            WireFunction::PrefixReplace { y, z } => AttrFunction::PrefixReplace(sym(y)?, sym(z)?),
            WireFunction::SuffixReplace { y, z } => AttrFunction::SuffixReplace(sym(y)?, sym(z)?),
            WireFunction::DateConvert { from, to } => AttrFunction::DateConvert(*from, *to),
            WireFunction::ZeroPad { width } => AttrFunction::ZeroPad(*width),
            WireFunction::ThousandsSep { sep } => AttrFunction::ThousandsSep(*sep),
            WireFunction::SepStrip { sep } => AttrFunction::SepStrip(*sep),
            WireFunction::Round { places } => AttrFunction::Round(*places),
            WireFunction::TokenProgram { segments } => {
                let segs = segments
                    .iter()
                    .map(|seg| {
                        Ok(match seg {
                            WireSegment::Literal { sym: s } => Segment::Literal(sym(s)?),
                            WireSegment::Token { index } if *index >= 0 && *index < 256 => {
                                Segment::Token {
                                    idx: *index as u8,
                                    from_end: false,
                                }
                            }
                            WireSegment::Token { index } if *index < 0 && *index >= -256 => {
                                Segment::Token {
                                    idx: (-*index - 1) as u8,
                                    from_end: true,
                                }
                            }
                            WireSegment::Token { index } => {
                                return Err(format!("token index {index} out of range"))
                            }
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                AttrFunction::TokenProgram(
                    TokenProgram::new(segs).ok_or_else(|| "degenerate token program".to_owned())?,
                )
            }
            WireFunction::Map { entries } => {
                let pairs = entries
                    .iter()
                    .map(|(k, v)| Ok((sym(k)?, sym(v)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                AttrFunction::Map(ValueMap::from_pairs(pairs))
            }
        })
    }
}

/// A blocking result Φ^H on the wire: per-block source/target record ids
/// plus the dead sources. Record ids are row indices into the job's
/// [`WireInstance`] — globally valid, no remapping needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBlocking {
    /// Per-block `(source_rows, target_rows)`, in block order.
    pub blocks: Vec<(Vec<u32>, Vec<u32>)>,
    /// Source rows excluded by partial function application.
    pub dead_src: Vec<u32>,
}

impl WireBlocking {
    /// Serialize a blocking.
    pub fn from_blocking(b: &Blocking) -> WireBlocking {
        WireBlocking {
            blocks: b
                .blocks
                .iter()
                .map(|blk| {
                    (
                        blk.src.iter().map(|r| r.0).collect(),
                        blk.tgt.iter().map(|r| r.0).collect(),
                    )
                })
                .collect(),
            dead_src: b.dead_src.iter().map(|r| r.0).collect(),
        }
    }

    /// Rebuild the blocking, validating every record id against the
    /// snapshot row counts (a malformed id would panic deep inside
    /// refinement instead of failing the job soft).
    pub fn to_blocking(&self, src_rows: usize, tgt_rows: usize) -> Result<Blocking, String> {
        let check = |ids: &[u32], limit: usize, side: &str| -> Result<Vec<RecordId>, String> {
            ids.iter()
                .map(|&r| {
                    if (r as usize) < limit {
                        Ok(RecordId(r))
                    } else {
                        Err(format!(
                            "{side} record {r} outside the snapshot ({limit} rows)"
                        ))
                    }
                })
                .collect()
        };
        Ok(Blocking {
            blocks: self
                .blocks
                .iter()
                .map(|(src, tgt)| {
                    Ok(Block {
                        src: check(src, src_rows, "source")?,
                        tgt: check(tgt, tgt_rows, "target")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            dead_src: check(&self.dead_src, src_rows, "source")?,
        })
    }
}

/// One attribute slot of a [`WireState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WireAssignment {
    /// `∗` — still undecided.
    Undecided,
    /// `⊞` — marked map-suited.
    MapMarked,
    /// A concrete assigned function.
    Assigned {
        /// The assigned function, symbol-indexed against the job's pool.
        func: WireFunction,
    },
}

/// A frontier search state on the wire. Function symbols index the job's
/// [`WireInstance`] pool; the cost ships as stringified `f64::to_bits`
/// because byte-identity of the search depends on it surviving exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireState {
    /// Per-attribute assignments, in schema order.
    pub assignments: Vec<WireAssignment>,
    /// The state's blocking Φ^H.
    pub blocking: WireBlocking,
    /// The state's cost as stringified `f64::to_bits`.
    pub cost: String,
    /// The driver-assigned state id (seeds the per-attribute RNG).
    pub id: u64,
    /// The parent state's id, if any.
    pub parent: Option<u64>,
}

impl WireState {
    /// Serialize a search state.
    pub fn from_state(state: &SearchState) -> WireState {
        WireState {
            assignments: state
                .assignments
                .iter()
                .map(|a| match a {
                    Assignment::Undecided => WireAssignment::Undecided,
                    Assignment::MapMarked => WireAssignment::MapMarked,
                    Assignment::Assigned(f) => WireAssignment::Assigned {
                        func: WireFunction::from_attr(f),
                    },
                })
                .collect(),
            blocking: WireBlocking::from_blocking(&state.blocking),
            cost: state.cost.to_bits().to_string(),
            id: state.id as u64,
            parent: state.parent.map(|p| p as u64),
        }
    }

    /// Rebuild the state, validating function symbols against `pool_len`
    /// and record ids against the snapshot row counts.
    pub fn to_state(
        &self,
        pool_len: usize,
        src_rows: usize,
        tgt_rows: usize,
    ) -> Result<SearchState, String> {
        Ok(SearchState {
            assignments: self
                .assignments
                .iter()
                .map(|a| {
                    Ok(match a {
                        WireAssignment::Undecided => Assignment::Undecided,
                        WireAssignment::MapMarked => Assignment::MapMarked,
                        WireAssignment::Assigned { func } => {
                            Assignment::Assigned(func.to_attr(pool_len)?)
                        }
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            blocking: std::sync::Arc::new(self.blocking.to_blocking(src_rows, tgt_rows)?),
            cost: f64::from_bits(parse_bits(&self.cost)?),
            id: self.id as usize,
            parent: self.parent.map(|p| p as usize),
        })
    }
}

/// One speculated frontier expansion as stealable work (version 2): the
/// polled state plus the alignment the driver pre-drew for it — the only
/// driver-RNG input of phase 1, shipped as drawn pairs so the wire format
/// stays engine-version independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireExpansion {
    /// The frontier state to expand.
    pub state: WireState,
    /// The pre-drawn `(source_row, target_row)` alignment, in draw order.
    pub alignment: Vec<(u32, u32)>,
}

impl WireExpansion {
    /// Serialize an expansion request.
    pub fn from_request(request: &ExpansionRequest) -> WireExpansion {
        WireExpansion {
            state: WireState::from_state(&request.state),
            alignment: request.alignment.iter().map(|&(s, t)| (s.0, t.0)).collect(),
        }
    }

    /// Rebuild the request, validating symbols and record ids.
    pub fn to_request(
        &self,
        pool_len: usize,
        src_rows: usize,
        tgt_rows: usize,
    ) -> Result<ExpansionRequest, String> {
        let pair = |&(s, t): &(u32, u32)| -> Result<(RecordId, RecordId), String> {
            if s as usize >= src_rows || t as usize >= tgt_rows {
                return Err(format!("alignment pair ({s}, {t}) outside the snapshots"));
            }
            Ok((RecordId(s), RecordId(t)))
        };
        Ok(ExpansionRequest {
            state: self.state.to_state(pool_len, src_rows, tgt_rows)?,
            alignment: self
                .alignment
                .iter()
                .map(pair)
                .collect::<Result<Vec<_>, String>>()?,
        })
    }
}

/// One candidate child of a [`WireAttrExpansion`]: symbols below the
/// part's `base_len` reference the job's pool, symbols at or above it
/// index into the part's `new_strings`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireChild {
    /// The candidate function, in job symbol coordinates.
    pub func: WireFunction,
    /// The blocking refined under the function.
    pub blocking: WireBlocking,
    /// The child's cost as stringified `f64::to_bits`.
    pub cost: String,
    /// Whether the candidate beat its greedy-map benchmark.
    pub kept: bool,
}

impl WireChild {
    fn from_portable(child: &PortableChild) -> WireChild {
        WireChild {
            func: WireFunction::from_attr(&child.func),
            blocking: WireBlocking::from_blocking(&child.blocking),
            cost: child.cost.to_bits().to_string(),
            kept: child.kept,
        }
    }

    fn to_portable(
        &self,
        pool_len: usize,
        src_rows: usize,
        tgt_rows: usize,
    ) -> Result<PortableChild, String> {
        Ok(PortableChild {
            func: self.func.to_attr(pool_len)?,
            blocking: self.blocking.to_blocking(src_rows, tgt_rows)?,
            cost: f64::from_bits(parse_bits(&self.cost)?),
            kept: self.kept,
        })
    }
}

/// Everything phase 1 produced for one attribute of one state, on the
/// wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAttrExpansion {
    /// The expanded attribute index.
    pub attr: u64,
    /// Pool length the expansion was frozen at: symbols below it are the
    /// job pool's, symbols at `base_len + i` mean `new_strings[i]`.
    pub base_len: u64,
    /// Strings interned past `base_len`, in interning order — the driver
    /// absorbs the whole list; pool growth order is part of the
    /// byte-identity contract.
    pub new_strings: Vec<String>,
    /// The greedy-map benchmark child.
    pub greedy: WireChild,
    /// All ranked candidates, in rank order.
    pub ranked: Vec<WireChild>,
}

/// A completed expansion on the wire — the
/// [`PortableExpansion`] a worker
/// computed for one [`WireExpansion`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireExpansionResult {
    /// Per-attribute expansions, in processed order.
    pub parts: Vec<WireAttrExpansion>,
    /// Whether any ranked candidate beat its greedy benchmark.
    pub any_kept: bool,
}

impl WireExpansionResult {
    /// Serialize a portable expansion.
    pub fn from_portable(expansion: &PortableExpansion) -> WireExpansionResult {
        WireExpansionResult {
            parts: expansion
                .parts
                .iter()
                .map(|p| WireAttrExpansion {
                    attr: p.attr as u64,
                    base_len: p.base_len as u64,
                    new_strings: p.new_strings.iter().map(|s| s.to_string()).collect(),
                    greedy: WireChild::from_portable(&p.greedy),
                    ranked: p.ranked.iter().map(WireChild::from_portable).collect(),
                })
                .collect(),
            any_kept: expansion.any_kept,
        }
    }

    /// Rebuild the portable expansion, validating each part's function
    /// symbols against `base_len + new_strings` and its record ids
    /// against the snapshot row counts.
    pub fn to_portable(
        &self,
        src_rows: usize,
        tgt_rows: usize,
    ) -> Result<PortableExpansion, String> {
        Ok(PortableExpansion {
            parts: self
                .parts
                .iter()
                .map(|p| {
                    let pool_len = p.base_len as usize + p.new_strings.len();
                    Ok(PortableAttrExpansion {
                        attr: p.attr as usize,
                        base_len: p.base_len as usize,
                        new_strings: p.new_strings.iter().map(|s| s.as_str().into()).collect(),
                        greedy: p.greedy.to_portable(pool_len, src_rows, tgt_rows)?,
                        ranked: p
                            .ranked
                            .iter()
                            .map(|c| c.to_portable(pool_len, src_rows, tgt_rows))
                            .collect::<Result<Vec<_>, String>>()?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            any_kept: self.any_kept,
        })
    }
}

fn parse_bits(cost: &str) -> Result<u64, String> {
    cost.parse::<u64>()
        .map_err(|_| format!("bad cost bits {cost:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table};

    fn sample_instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["80000", "IBM"], vec!["65", "SAP"]],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["80", "IBM"], vec!["0.065", "SAP"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn instance_roundtrips_with_identical_numbering() {
        let instance = sample_instance();
        let wire = WireInstance::from_instance(&instance);
        let back = wire.decode().unwrap();
        assert_eq!(back.pool.len(), instance.pool.len());
        for i in 0..instance.pool.len() {
            let sym = Sym(i as u32);
            assert_eq!(back.pool.get(sym), instance.pool.get(sym));
        }
        assert_eq!(
            WireInstance::from_instance(&back),
            wire,
            "re-encoding must be a fixed point"
        );
    }

    #[test]
    fn decode_with_extra_extends_the_pool_in_order() {
        let instance = sample_instance();
        let wire = WireInstance::from_instance(&instance);
        let base_len = wire.base_len();
        let extra = vec!["brand-new".to_owned(), "also-new".to_owned()];
        let back = wire.decode_with_extra(&extra).unwrap();
        assert_eq!(back.pool.len(), base_len + 2);
        assert_eq!(back.pool.get(Sym(base_len as u32)), "brand-new");
        assert_eq!(back.pool.get(Sym(base_len as u32 + 1)), "also-new");
        // An extra duplicating a base string would shift numbering — reject.
        let dup = vec![wire.pool[0].clone()];
        assert!(wire
            .decode_with_extra(&dup)
            .unwrap_err()
            .contains("duplicates"));
    }

    #[test]
    fn instance_digests_are_stable_and_content_sensitive() {
        let wire = WireInstance::from_instance(&sample_instance());
        let digest = instance_digest(&wire);
        assert_eq!(digest.len(), 16);
        assert_eq!(digest, instance_digest(&wire.clone()), "deterministic");
        let mut grown = wire.clone();
        grown.pool.push("more".to_owned());
        assert_ne!(digest, instance_digest(&grown));
    }

    #[test]
    fn decode_rejects_malformed_instances() {
        let instance = sample_instance();
        let wire = WireInstance::from_instance(&instance);

        let mut dup = wire.clone();
        dup.pool.push(dup.pool[0].clone());
        assert!(dup.decode().unwrap_err().contains("duplicates"));

        let mut bad_sym = wire.clone();
        bad_sym.source[0][0] = 999;
        assert!(bad_sym.decode().unwrap_err().contains("outside the pool"));

        let mut bad_arity = wire.clone();
        bad_arity.target[1].pop();
        assert!(bad_arity.decode().unwrap_err().contains("cells"));
    }

    #[test]
    fn envelope_rejects_foreign_messages() {
        let body = Value::Object(vec![]);
        let text = seal("job", body.clone());
        assert!(unseal(&text, "job").is_ok());
        assert!(unseal(&text, "result").unwrap_err().contains("expected"));
        let alien = text.replace("affidavit-dist", "other-format");
        assert!(unseal(&alien, "job").unwrap_err().contains("format"));
        let future = text.replace("\"version\":3", "\"version\":4");
        assert!(unseal(&future, "job")
            .unwrap_err()
            .contains("unsupported wire version"));
    }

    #[test]
    fn functions_roundtrip_without_a_pool() {
        let mut pool = ValuePool::new();
        let all = vec![
            AttrFunction::Identity,
            AttrFunction::Constant(pool.intern("c")),
            AttrFunction::Add(Decimal::parse("-2.5").unwrap()),
            AttrFunction::Scale(Rational::new(1, 1000).unwrap()),
            AttrFunction::PrefixReplace(pool.intern("a"), pool.intern("b")),
            AttrFunction::DateConvert(DateFormat::YyyyMmDd, DateFormat::IsoDashed),
            AttrFunction::TokenProgram(
                TokenProgram::new(vec![
                    Segment::Token {
                        idx: 0,
                        from_end: true,
                    },
                    Segment::Literal(pool.intern("-")),
                    Segment::Token {
                        idx: 1,
                        from_end: false,
                    },
                ])
                .unwrap(),
            ),
            AttrFunction::Map(ValueMap::from_pairs([
                (pool.intern("1"), pool.intern("one")),
                (pool.intern("2"), pool.intern("two")),
            ])),
        ];
        for f in all {
            let wire = WireFunction::from_attr(&f);
            let json = serde_json::to_string(&wire).unwrap();
            let back: WireFunction = serde_json::from_str(&json).unwrap();
            assert_eq!(back, wire);
            let rebuilt = back.to_attr(pool.len()).unwrap();
            assert_eq!(rebuilt, f, "syms must survive the wire exactly");
        }
    }

    #[test]
    fn function_decode_checks_symbol_bounds() {
        let wire = WireFunction::Constant { value: 7 };
        assert!(wire.to_attr(7).is_err());
        assert!(wire.to_attr(8).is_ok());
    }

    #[test]
    fn expansion_requests_roundtrip_exactly() {
        let instance = sample_instance();
        let state = SearchState {
            assignments: vec![
                Assignment::Assigned(AttrFunction::Identity),
                Assignment::Undecided,
            ],
            blocking: std::sync::Arc::new(Blocking::root(&instance.source, &instance.target)),
            cost: 1.5,
            id: 7,
            parent: Some(2),
        };
        let request = ExpansionRequest {
            state,
            alignment: vec![(RecordId(0), RecordId(1)), (RecordId(1), RecordId(0))],
        };
        let wire = WireExpansion::from_request(&request);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireExpansion = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wire);
        let rebuilt = back.to_request(instance.pool.len(), 2, 2).unwrap();
        assert_eq!(rebuilt.state.cost.to_bits(), request.state.cost.to_bits());
        assert_eq!(rebuilt.state.id, 7);
        assert_eq!(rebuilt.state.parent, Some(2));
        assert_eq!(rebuilt.alignment, request.alignment);
        assert_eq!(
            rebuilt.state.blocking.blocks.len(),
            request.state.blocking.blocks.len()
        );
        assert_eq!(
            WireExpansion::from_request(&rebuilt),
            wire,
            "re-encoding is a fixed point"
        );
    }

    #[test]
    fn expansion_decode_checks_record_and_symbol_bounds() {
        let instance = sample_instance();
        let state = SearchState {
            assignments: vec![Assignment::Undecided, Assignment::Undecided],
            blocking: std::sync::Arc::new(Blocking::root(&instance.source, &instance.target)),
            cost: 0.0,
            id: 0,
            parent: None,
        };
        let request = ExpansionRequest {
            state,
            alignment: vec![(RecordId(0), RecordId(0))],
        };
        let wire = WireExpansion::from_request(&request);

        let mut bad_record = wire.clone();
        bad_record.state.blocking.blocks[0].0[0] = 99;
        assert!(bad_record
            .to_request(instance.pool.len(), 2, 2)
            .unwrap_err()
            .contains("outside the snapshot"));

        let mut bad_align = wire.clone();
        bad_align.alignment[0] = (0, 99);
        assert!(bad_align
            .to_request(instance.pool.len(), 2, 2)
            .unwrap_err()
            .contains("alignment pair"));

        let mut bad_sym = wire.clone();
        bad_sym.state.assignments[0] = WireAssignment::Assigned {
            func: WireFunction::Constant { value: 999 },
        };
        assert!(bad_sym
            .to_request(instance.pool.len(), 2, 2)
            .unwrap_err()
            .contains("outside the worker pool"));

        let mut bad_cost = wire;
        bad_cost.state.cost = "not-bits".to_owned();
        assert!(bad_cost
            .to_request(instance.pool.len(), 2, 2)
            .unwrap_err()
            .contains("bad cost bits"));
    }

    #[test]
    fn expansion_results_roundtrip_with_exact_costs() {
        // A cost with no finite decimal representation must survive the
        // wire bit-for-bit.
        let cost = 0.1f64 + 0.2f64;
        let mut pool = ValuePool::new();
        let child = PortableChild {
            func: AttrFunction::Constant(pool.intern("k $")),
            blocking: Blocking {
                blocks: vec![Block {
                    src: vec![RecordId(0)],
                    tgt: vec![RecordId(1)],
                }],
                dead_src: vec![RecordId(1)],
            },
            cost,
            kept: true,
        };
        let expansion = PortableExpansion {
            parts: vec![PortableAttrExpansion {
                attr: 1,
                base_len: pool.len(),
                new_strings: vec!["fresh".into()],
                greedy: PortableChild {
                    kept: false,
                    ..child.clone()
                },
                ranked: vec![child],
            }],
            any_kept: true,
        };
        let wire = WireExpansionResult::from_portable(&expansion);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireExpansionResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wire);
        let rebuilt = back.to_portable(2, 2).unwrap();
        assert_eq!(rebuilt.parts[0].ranked[0].cost.to_bits(), cost.to_bits());
        assert_eq!(rebuilt.parts[0].new_strings, expansion.parts[0].new_strings);
        assert!(rebuilt.any_kept);
        assert_eq!(
            WireExpansionResult::from_portable(&rebuilt),
            wire,
            "re-encoding is a fixed point"
        );

        // A function symbol past base_len + new_strings is rejected.
        let mut bad = wire;
        bad.parts[0].ranked[0].func = WireFunction::Constant {
            value: (pool.len() + 1) as u32,
        };
        assert!(bad.to_portable(2, 2).is_err());
    }
}
