//! `affidavit-worker` — steal and execute jobs from a broker.
//!
//! ```text
//! affidavit-worker (--broker DIR | --connect HOST:PORT)
//!                  [--worker-id NAME] [--poll-ms N] [--reconnect-attempts N]
//! ```
//!
//! The worker loops forever: claim the next pending job (an atomic
//! rename in the `--broker` spool directory, or one framed TCP exchange
//! against a `--connect` coordinator), run the search, deliver the
//! result, repeat. It exits successfully once the broker requests stop
//! (any still-pending jobs belong to an aborting run or are redundant
//! duplicates, and are abandoned). Any number of workers — spawned by
//! `affidavit profile --workers N`, or started by hand against a shared
//! spool or a coordinator address — can serve one run; the coordinator's
//! output does not depend on how many there are.
//!
//! If the broker disappears mid-run (spool directory removed,
//! coordinator socket dead), the worker probes for it with exponential
//! backoff for `--reconnect-attempts` rounds, resuming where it left off
//! when the broker returns. A broker that stays gone terminates the
//! worker with **exit code 3** (`1` is reserved for usage and fatal
//! errors), so a supervisor can distinguish "lost my coordinator" from
//! "misconfigured".

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use affidavit_dist::{
    run_worker_with_reconnect, Broker, FsBroker, JobQueue, TcpClient, WorkerExit,
    BROKER_LOST_EXIT_CODE,
};

const USAGE: &str = "usage: affidavit-worker (--broker DIR | --connect HOST:PORT) \
                     [--worker-id NAME] [--poll-ms N] [--reconnect-attempts N]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("affidavit-worker: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut broker_dir: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut worker_id = format!("pid-{}", std::process::id());
    let mut poll_ms: u64 = 10;
    let mut reconnect_attempts: usize = 6;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--broker" => broker_dir = Some(PathBuf::from(it.next().ok_or(USAGE)?)),
            "--connect" => connect = Some(it.next().ok_or(USAGE)?),
            "--worker-id" => worker_id = it.next().ok_or(USAGE)?,
            "--poll-ms" => {
                poll_ms = it
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--poll-ms expects milliseconds")?;
            }
            "--reconnect-attempts" => {
                reconnect_attempts = it
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--reconnect-attempts expects a count")?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let poll = Duration::from_millis(poll_ms.max(1));
    type LivenessProbe = Box<dyn Fn() -> Result<(), String>>;
    // One queue + one liveness probe per transport; the steal loop and
    // the reconnect policy are shared.
    let (queue, probe): (Box<dyn JobQueue>, LivenessProbe) = match (broker_dir, connect) {
        (Some(dir), None) => {
            let queue = FsBroker::open(&dir)?;
            let probe = move || {
                if dir.join("jobs").is_dir() {
                    Ok(())
                } else {
                    Err(format!("spool {} is gone", dir.display()))
                }
            };
            (Box::new(queue), Box::new(probe))
        }
        (None, Some(addr)) => {
            let client = TcpClient::new(addr);
            let probe_client = client.clone();
            (
                Box::new(Broker::new(client)),
                Box::new(move || probe_client.ping()),
            )
        }
        _ => return Err(USAGE.to_owned()),
    };
    match run_worker_with_reconnect(
        queue.as_ref(),
        probe.as_ref(),
        &worker_id,
        poll,
        reconnect_attempts,
    ) {
        WorkerExit::Completed(stats) => {
            eprintln!(
                "affidavit-worker {worker_id}: {} jobs processed ({} failed)",
                stats.processed, stats.failed
            );
            Ok(ExitCode::SUCCESS)
        }
        WorkerExit::BrokerLost { attempts, error } => {
            eprintln!(
                "affidavit-worker {worker_id}: broker lost ({error}); gave up \
                 after {attempts} reconnect attempts"
            );
            Ok(ExitCode::from(BROKER_LOST_EXIT_CODE))
        }
    }
}
