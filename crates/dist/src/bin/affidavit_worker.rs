//! `affidavit-worker` — steal and execute jobs from a filesystem broker.
//!
//! ```text
//! affidavit-worker --broker DIR [--worker-id NAME] [--poll-ms N]
//! ```
//!
//! The worker loops forever: claim the next pending job by atomic rename,
//! run the search, deliver the result, repeat. It exits successfully once
//! the broker's `stop` file exists (any still-pending jobs belong to an
//! aborting run or are redundant duplicates, and are abandoned). Any number
//! of workers — spawned by `affidavit profile --workers N`, or started by
//! hand against a shared `--broker` directory — can serve one run; the
//! coordinator's output does not depend on how many there are.

use std::process::ExitCode;
use std::time::Duration;

use affidavit_dist::{run_worker, FsBroker};

const USAGE: &str = "usage: affidavit-worker --broker DIR [--worker-id NAME] [--poll-ms N]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("affidavit-worker: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut broker_dir: Option<String> = None;
    let mut worker_id = format!("pid-{}", std::process::id());
    let mut poll_ms: u64 = 10;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--broker" => broker_dir = Some(it.next().ok_or(USAGE)?),
            "--worker-id" => worker_id = it.next().ok_or(USAGE)?,
            "--poll-ms" => {
                poll_ms = it
                    .next()
                    .ok_or(USAGE)?
                    .parse()
                    .map_err(|_| "--poll-ms expects milliseconds")?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let broker = FsBroker::open(broker_dir.ok_or(USAGE)?)?;
    let stats = run_worker(&broker, &worker_id, Duration::from_millis(poll_ms.max(1)))?;
    eprintln!(
        "affidavit-worker {worker_id}: {} jobs processed ({} failed)",
        stats.processed, stats.failed
    );
    Ok(())
}
