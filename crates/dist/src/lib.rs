//! Distributed work-stealing for whole-snapshot profiling.
//!
//! The paper's operating point — "database snapshots with **hundreds of
//! tables**" — outgrows one machine before it outgrows the algorithm.
//! This crate fans the profiling workload out over a job queue with
//! work-stealing:
//!
//! * [`wire`] — a versioned, self-describing serialization of
//!   [`ProblemInstance`](affidavit_core::ProblemInstance) +
//!   [`AffidavitConfig`](affidavit_core::AffidavitConfig) (and of
//!   results), covered by round-trip and golden-bytes tests.
//! * [`queue`] — the [`JobQueue`] abstraction and the in-process backend.
//! * [`transport`] — the transport seam: the work-stealing protocol
//!   (publish → exclusive claim/lease → deliver → straggler
//!   re-publication with backoff → duplicate compare-and-discard → stop)
//!   expressed **once**, in [`Broker`], against the [`Transport`] trait's
//!   operations on opaque wire envelopes.
//! * [`broker`] — transport #1, the spool directory: real
//!   `affidavit-worker` child processes claim pending job files by atomic
//!   rename (exactly one winner — that *is* the work-stealing).
//! * [`frame`] — the length-prefixed frame codec under every socket
//!   protocol (this crate's steal loop and the `affidavit-serve` client
//!   API), with progress-based stall timeouts.
//! * [`tcp`] — transport #2, sockets: the coordinator binds a listener
//!   and tracks leases in memory; workers dial `--connect HOST:PORT` and
//!   multiplex framed request/response exchanges over one keep-alive
//!   connection, so no shared filesystem is needed and a dropped
//!   connection mid-job is just a straggler.
//! * [`coordinate`] — the coordinator: results are absorbed **in job-id
//!   order** with [`SymRemap`](affidavit_table::SymRemap) pool merging,
//!   so the rendered profile is byte-identical to the single-process run
//!   at every worker count and on every transport
//!   (`tests/properties_dist.rs`, `tests/properties_transport.rs`).
//! * [`expansion`] — expansion stealing: the speculation driver's K-way
//!   frontier batches published to the same queue as wire version 3
//!   expansion jobs (instances content-addressed by digest, shipped
//!   inline once and referenced thereafter), computed by local threads
//!   and remote
//!   `affidavit-worker` processes stealing side by side, reconciled by
//!   the driver's serial replay into byte-identical reports
//!   (`tests/properties_expansion_steal.rs`).
//!
//! Determinism does not depend on the queue: every job result is a pure
//! function of the job bytes (the engine underneath is byte-identical at
//! any thread count and speculative width), so stolen-then-duplicated
//! jobs and straggler retries degrade to *wasted work*, never to
//! nondeterminism — the same argument, one level up, as the speculative
//! frontier's reconciliation protocol.
//!
//! ```
//! use std::time::Duration;
//! use affidavit_core::{AffidavitConfig, Affidavit, ProblemInstance};
//! use affidavit_core::report::render_report;
//! use affidavit_dist::queue::{InProcessQueue, JobQueue};
//! use affidavit_dist::coordinate::explain_via;
//! use affidavit_dist::worker::run_worker;
//! use affidavit_table::{Schema, Table, ValuePool};
//!
//! let build = || {
//!     let mut pool = ValuePool::new();
//!     let s = Table::from_rows(Schema::new(["Val"]), &mut pool,
//!         vec![vec!["80000"], vec!["21000"], vec!["65000"]]);
//!     let t = Table::from_rows(Schema::new(["Val"]), &mut pool,
//!         vec![vec!["80"], vec!["21"], vec!["65"]]);
//!     ProblemInstance::new(s, t, pool).unwrap()
//! };
//! let cfg = AffidavitConfig::paper_id();
//!
//! // Distribute the search over one worker thread...
//! let queue = InProcessQueue::new();
//! let mut instance = build();
//! let remote = std::thread::scope(|scope| {
//!     scope.spawn(|| run_worker(&queue, "w0", Duration::from_millis(1)));
//!     let remote = explain_via(&queue, &mut instance, &cfg, Duration::from_secs(60));
//!     queue.request_shutdown().unwrap();
//!     remote
//! }).unwrap();
//!
//! // ...and the absorbed result renders byte-identically to a local run.
//! let mut local = build();
//! let outcome = Affidavit::new(cfg).explain(&mut local);
//! assert_eq!(
//!     render_report(&remote.explanation, &instance),
//!     render_report(&outcome.explanation, &local),
//! );
//! ```

#![warn(missing_docs)]

pub mod broker;
pub mod coordinate;
pub mod expansion;
pub mod frame;
pub mod job;
pub mod queue;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use broker::{
    spawn_workers, worker_binary, FsBroker, FsTransport, WorkerEndpoint, WorkerHandle,
};
pub use coordinate::{
    absorb_result, execute_jobs, explain_via, profile_dirs_distributed, DistBackend, DistOptions,
    DistStats, RemoteExplanation,
};
pub use expansion::{ExpansionFleet, ExpansionFleetOptions};
pub use frame::{
    configure_stream, read_frame, write_frame, FrameConfig, FrameRead, MAX_FRAME_BYTES,
};
pub use job::{
    decode_job, decode_result, encode_job, encode_result, is_instance_miss, InstanceCache, Job,
    JobOutcome, JobPayload, JobResult,
};
pub use queue::{InProcessQueue, JobQueue, QueueStats};
pub use tcp::{TcpBroker, TcpClient};
pub use transport::{requeue_backoff, Broker, Claimed, Delivered, Transport};
pub use wire::{
    instance_digest, WireFunction, WireInstance, WireInstanceSpec, WIRE_FORMAT, WIRE_VERSION,
};
pub use worker::{
    run_worker, run_worker_with_reconnect, WorkerExit, WorkerStats, BROKER_LOST_EXIT_CODE,
};
