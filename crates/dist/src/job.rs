//! Jobs, results, and the worker-side execution of a job.
//!
//! A [`Job`] is one unit of stealable work: a serialized problem instance
//! plus the full search configuration. Job ids are assigned by the
//! coordinator in its deterministic work order (sorted table names for a
//! profiling run); results are *absorbed in job-id order* no matter which
//! worker finished first, which is one half of the distributed
//! determinism story. The other half is that [`process_job`] is a pure
//! function of the job bytes — the engine underneath is byte-identical at
//! every thread count and speculative width — so a job that is stolen
//! twice, retried after a straggler timeout, or replayed by a second
//! worker produces the *same* result, and duplicates degrade to wasted
//! work, never to nondeterminism.

use std::time::Instant;

use affidavit_core::{expand_portable, Affidavit, AffidavitConfig};
use affidavit_table::Sym;
use serde::{Deserialize, Serialize};

use crate::wire::{
    seal, unseal, WireExpansion, WireExpansionResult, WireFunction, WireInstance, WireInstanceSpec,
};

/// Reason prefix of the [`JobOutcome::Failed`] a worker returns when an
/// expansion job references an instance digest it does not hold (fresh
/// attach, restart, cache eviction). The coordinator recognizes the
/// prefix and re-ships that chunk inline under a fresh job id; every
/// other `Failed` reason declines the batch.
pub const INSTANCE_MISS_PREFIX: &str = "instance-cache-miss: ";

/// Whether a result is a worker-side instance-cache miss — expected
/// whenever a cold worker steals a digest-only job, and resolved by the
/// coordinator re-shipping inline. Duplicate comparison must treat these
/// as always-discardable: a cold and a warm worker racing on a requeued
/// id legitimately produce different bytes.
pub fn is_instance_miss(result: &JobResult) -> bool {
    matches!(&result.outcome, JobOutcome::Failed { reason } if reason.starts_with(INSTANCE_MISS_PREFIX))
}

/// One stealable unit of work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Coordinator-assigned id; results are absorbed in increasing id
    /// order regardless of completion order.
    pub id: u64,
    /// Human-readable label (the table name for profiling jobs).
    pub name: String,
    /// What to compute.
    pub payload: JobPayload,
}

/// The work a job carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "task", rename_all = "snake_case")]
pub enum JobPayload {
    /// Run the full Affidavit search over a serialized instance.
    Explain {
        /// The serialized problem instance.
        instance: WireInstance,
        /// The search configuration (seed, β, ϱ, threads, speculative
        /// width, …) — the worker honours it exactly, so its in-process
        /// parallelism and frontier speculation are configured from the
        /// coordinator.
        config: AffidavitConfig,
    },
    /// Compute a batch of speculated frontier expansions (the phase-1
    /// half of the speculation engine) over a serialized instance. The
    /// instance is the coordinator's pool prefix at speculation time;
    /// every request in the batch is expanded against it independently.
    Expansion {
        /// The problem instance — inline with a content digest on first
        /// sight, by digest plus pool delta afterwards.
        instance: WireInstanceSpec,
        /// The search configuration — expansion is byte-identical at
        /// every thread count, so this only tunes worker-side scheduling.
        config: AffidavitConfig,
        /// The leased batch of expansion requests, in driver batch order.
        batch: Vec<WireExpansion>,
    },
}

/// A completed (or failed) job, as shipped back to the coordinator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's id.
    pub id: u64,
    /// The job's label, echoed back.
    pub name: String,
    /// Which worker produced this result.
    pub worker: String,
    /// The outcome.
    pub outcome: JobOutcome,
}

/// What a worker produced for one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum JobOutcome {
    /// The search finished. Everything symbol-valued is expressed against
    /// the worker's pool: the shipped prefix (indices below the job's
    /// [`WireInstance::base_len`]) plus `new_strings`, the strings the
    /// search interned past it, in interning order. The coordinator
    /// absorbs `new_strings` into its own pool and rewrites the function
    /// symbols through the resulting
    /// [`SymRemap`](affidavit_table::SymRemap).
    Explained {
        /// Pool growth past the shipped prefix, in interning order.
        new_strings: Vec<String>,
        /// The learned functions, one per attribute, symbol-indexed.
        functions: Vec<WireFunction>,
        /// Core bijection pairs `(source_row, target_row)`.
        core: Vec<(u32, u32)>,
        /// Source rows labelled deleted.
        deleted: Vec<u32>,
        /// Target rows labelled inserted.
        inserted: Vec<u32>,
        /// States polled by the worker's search.
        polled: u64,
        /// States expanded by the worker's search.
        expansions: u64,
        /// Worker-side search wall time in milliseconds (the only
        /// nondeterministic field; strip it before byte comparisons).
        millis: u64,
    },
    /// A batch of frontier expansions finished. Each result is the pure
    /// [`expand_portable`] value for the
    /// matching request — byte-identical to what the coordinator's own
    /// phase 1 would have computed, so duplicates and stragglers degrade
    /// to wasted work, never to nondeterminism.
    Expanded {
        /// One expansion per request, in request order.
        expansions: Vec<WireExpansionResult>,
        /// Worker-side wall time in milliseconds (the only
        /// nondeterministic field; strip it before byte comparisons).
        millis: u64,
    },
    /// The job could not be executed (malformed instance, version skew…).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

/// Render a job as a wire message.
pub fn encode_job(job: &Job) -> String {
    seal("job", job.to_value())
}

/// Parse a wire message as a job.
pub fn decode_job(text: &str) -> Result<Job, String> {
    Job::from_value(&unseal(text, "job")?).map_err(|e| e.to_string())
}

/// Render a result as a wire message.
pub fn encode_result(result: &JobResult) -> String {
    seal("result", result.to_value())
}

/// Parse a wire message as a result.
pub fn decode_result(text: &str) -> Result<JobResult, String> {
    JobResult::from_value(&unseal(text, "result")?).map_err(|e| e.to_string())
}

/// A worker's bounded store of content-addressed instances, so a fleet's
/// digest-only expansion jobs decode without the instance crossing the
/// transport again. One per worker loop; [`JobPayload::Expansion`] jobs
/// shipped inline warm it. Eviction is least-recently-used with a small
/// cap — a worker serves one coordinator, which itself tracks at most a
/// handful of live bases.
#[derive(Debug, Default)]
pub struct InstanceCache {
    /// `(digest, instance)`, least recently used first.
    entries: Vec<(String, WireInstance)>,
}

impl InstanceCache {
    /// How many bases a worker retains. Matches the coordinator side
    /// ([`ExpansionFleet`](crate::expansion::ExpansionFleet) tracks the
    /// same number of shipped bases), so a worker serving one fleet
    /// never misses on a digest the fleet still considers live.
    pub const CAPACITY: usize = 8;

    /// The cached base for `digest`, freshening its LRU position.
    pub fn get(&mut self, digest: &str) -> Option<&WireInstance> {
        let pos = self.entries.iter().position(|(d, _)| d == digest)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        Some(&self.entries.last().expect("just pushed").1)
    }

    /// Store (or freshen) a base under its digest.
    pub fn put(&mut self, digest: &str, instance: &WireInstance) {
        if let Some(pos) = self.entries.iter().position(|(d, _)| d == digest) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return;
        }
        if self.entries.len() >= Self::CAPACITY {
            self.entries.remove(0);
        }
        self.entries.push((digest.to_owned(), instance.clone()));
    }
}

/// Execute a job. Never panics on malformed input — decode errors come
/// back as [`JobOutcome::Failed`] so the coordinator does not hang waiting
/// for a result that will never arrive. A fresh [`InstanceCache`] is used,
/// so digest-only expansion jobs fail with [`INSTANCE_MISS_PREFIX`]; the
/// worker loop threads a persistent cache through
/// [`process_job_with_cache`].
pub fn process_job(job: &Job, worker: &str) -> JobResult {
    process_job_with_cache(job, worker, &mut InstanceCache::default())
}

/// [`process_job`] with a caller-owned instance cache (the worker loop's,
/// surviving across jobs).
pub fn process_job_with_cache(job: &Job, worker: &str, cache: &mut InstanceCache) -> JobResult {
    let outcome = match &job.payload {
        JobPayload::Explain { instance, config } => run_explain(instance, config),
        JobPayload::Expansion {
            instance,
            config,
            batch,
        } => run_expansion(instance, config, batch, cache),
    };
    JobResult {
        id: job.id,
        name: job.name.clone(),
        worker: worker.to_owned(),
        outcome,
    }
}

fn run_explain(wire: &WireInstance, config: &AffidavitConfig) -> JobOutcome {
    let mut instance = match wire.decode() {
        Ok(instance) => instance,
        Err(reason) => return JobOutcome::Failed { reason },
    };
    let base_len = instance.pool.len();
    let started = Instant::now();
    let outcome = Affidavit::new(config.clone()).explain(&mut instance);
    let millis = started.elapsed().as_millis() as u64;
    let e = &outcome.explanation;
    JobOutcome::Explained {
        new_strings: (base_len..instance.pool.len())
            .map(|i| instance.pool.get(Sym(i as u32)).to_owned())
            .collect(),
        functions: e.functions.iter().map(WireFunction::from_attr).collect(),
        core: e.core_pairs().iter().map(|&(s, t)| (s.0, t.0)).collect(),
        deleted: e.deleted.iter().map(|r| r.0).collect(),
        inserted: e.inserted.iter().map(|r| r.0).collect(),
        polled: outcome.stats.polled as u64,
        expansions: outcome.stats.expansions as u64,
        millis,
    }
}

fn run_expansion(
    spec: &WireInstanceSpec,
    config: &AffidavitConfig,
    batch: &[WireExpansion],
    cache: &mut InstanceCache,
) -> JobOutcome {
    let decoded = match spec {
        WireInstanceSpec::Inline {
            digest,
            instance,
            extra_pool,
        } => {
            cache.put(digest, instance);
            instance.decode_with_extra(extra_pool)
        }
        WireInstanceSpec::Cached { digest, extra_pool } => match cache.get(digest) {
            Some(base) => base.decode_with_extra(extra_pool),
            None => {
                return JobOutcome::Failed {
                    reason: format!("{INSTANCE_MISS_PREFIX}{digest}"),
                }
            }
        },
    };
    let instance = match decoded {
        Ok(instance) => instance,
        Err(reason) => return JobOutcome::Failed { reason },
    };
    // One expansion at a time, each internally sequential: expansion jobs
    // are already the unit of fleet-level parallelism, so nested fan-out
    // inside a worker process would only oversubscribe it. Byte-identity
    // does not depend on this — expansion is pure at every thread count.
    let mut config = config.clone();
    config.threads = 1;
    let src_rows = instance.source.len();
    let tgt_rows = instance.target.len();
    let started = Instant::now();
    let mut expansions = Vec::with_capacity(batch.len());
    for request in batch {
        let request = match request.to_request(instance.pool.len(), src_rows, tgt_rows) {
            Ok(request) => request,
            Err(reason) => return JobOutcome::Failed { reason },
        };
        let expansion = expand_portable(&instance, &config, &request);
        expansions.push(WireExpansionResult::from_portable(&expansion));
    }
    JobOutcome::Expanded {
        expansions,
        millis: started.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table, ValuePool};

    fn tiny_job(id: u64) -> Job {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            (0..12).map(|i| vec![format!("k{i}"), format!("{}", (i + 1) * 1000)]),
        );
        let t = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            (0..12).map(|i| vec![format!("k{i}"), format!("{}", i + 1)]),
        );
        let instance = affidavit_core::ProblemInstance::new(s, t, pool).expect("schemas match");
        Job {
            id,
            name: "tiny".to_owned(),
            payload: JobPayload::Explain {
                instance: WireInstance::from_instance(&instance),
                config: AffidavitConfig::paper_id(),
            },
        }
    }

    #[test]
    fn jobs_and_results_roundtrip() {
        let job = tiny_job(3);
        let text = encode_job(&job);
        let back = decode_job(&text).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(encode_job(&back), text, "re-encoding is a fixed point");

        let result = process_job(&back, "w0");
        let text = encode_result(&result);
        let back = decode_result(&text).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.worker, "w0");
        assert!(matches!(back.outcome, JobOutcome::Explained { .. }));
    }

    #[test]
    fn processing_is_deterministic_across_workers() {
        let job = tiny_job(0);
        let strip = |mut r: JobResult| {
            r.worker = String::new();
            if let JobOutcome::Explained { millis, .. } = &mut r.outcome {
                *millis = 0;
            }
            encode_result(&r)
        };
        let a = strip(process_job(&job, "w0"));
        let b = strip(process_job(&job, "w1"));
        assert_eq!(a, b, "a stolen-then-duplicated job must be pure waste");
    }

    #[test]
    fn digest_only_jobs_miss_cold_caches_and_hit_warm_ones() {
        let JobPayload::Explain { instance, config } = tiny_job(0).payload else {
            unreachable!("tiny_job builds an explain job");
        };
        let digest = crate::wire::instance_digest(&instance);
        let decoded = instance.decode().unwrap();
        let state = affidavit_core::state::SearchState {
            assignments: vec![
                affidavit_core::state::Assignment::Undecided,
                affidavit_core::state::Assignment::Undecided,
            ],
            blocking: std::sync::Arc::new(affidavit_blocking::Blocking::root(
                &decoded.source,
                &decoded.target,
            )),
            cost: 0.0,
            id: 0,
            parent: None,
        };
        let request = affidavit_core::ExpansionRequest {
            state,
            alignment: vec![(affidavit_table::RecordId(0), affidavit_table::RecordId(0))],
        };
        let job_with = |spec: WireInstanceSpec| Job {
            id: 1,
            name: "spec".to_owned(),
            payload: JobPayload::Expansion {
                instance: spec,
                config: config.clone(),
                batch: vec![WireExpansion::from_request(&request)],
            },
        };
        let mut cache = InstanceCache::default();
        // Cold cache + digest-only job: the distinguished soft failure.
        let miss = process_job_with_cache(
            &job_with(WireInstanceSpec::Cached {
                digest: digest.clone(),
                extra_pool: Vec::new(),
            }),
            "w0",
            &mut cache,
        );
        assert!(is_instance_miss(&miss), "{:?}", miss.outcome);
        // An inline job warms the cache...
        let inline = process_job_with_cache(
            &job_with(WireInstanceSpec::Inline {
                digest: digest.clone(),
                instance: instance.clone(),
                extra_pool: Vec::new(),
            }),
            "w0",
            &mut cache,
        );
        assert!(matches!(inline.outcome, JobOutcome::Expanded { .. }));
        // ...after which the same digest-only job succeeds, byte-identically.
        let hit = process_job_with_cache(
            &job_with(WireInstanceSpec::Cached {
                digest,
                extra_pool: Vec::new(),
            }),
            "w0",
            &mut cache,
        );
        assert!(!is_instance_miss(&hit));
        assert_eq!(
            crate::queue::strip_nondeterminism(&hit),
            crate::queue::strip_nondeterminism(&inline)
        );
    }

    #[test]
    fn the_instance_cache_is_bounded_and_lru() {
        let JobPayload::Explain { instance, .. } = tiny_job(0).payload else {
            unreachable!("tiny_job builds an explain job");
        };
        let mut cache = InstanceCache::default();
        for i in 0..InstanceCache::CAPACITY {
            cache.put(&format!("d{i}"), &instance);
        }
        // Freshen d0, then overflow: d1 (now the least recent) is evicted.
        assert!(cache.get("d0").is_some());
        cache.put("one-too-many", &instance);
        assert!(cache.get("d1").is_none());
        assert!(cache.get("d0").is_some());
        assert!(cache.get("one-too-many").is_some());
    }

    #[test]
    fn malformed_instance_fails_soft() {
        let mut job = tiny_job(0);
        let JobPayload::Explain { instance, .. } = &mut job.payload else {
            unreachable!("tiny_job builds an explain job");
        };
        instance.source[0][0] = 10_000;
        let result = process_job(&job, "w0");
        assert!(matches!(result.outcome, JobOutcome::Failed { .. }));
    }
}
