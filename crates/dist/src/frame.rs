//! Length-prefixed frame codec shared by every socket protocol.
//!
//! One frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 (JSON, for both vocabularies built on top: the steal-loop
//! request/response enums in [`crate::tcp`] and the client-API enums of
//! the `affidavit-serve` crate). Oversized or malformed frames fail the
//! exchange, never the process.
//!
//! # Progress-based timeouts
//!
//! A frame may legitimately be up to [`MAX_FRAME_BYTES`] (serialized
//! whole-snapshot instances), so a fixed whole-frame deadline would
//! misclassify a slow-but-progressing peer as dead — and on the steal
//! loop that means requeuing its job as a straggler and paying duplicate
//! work. Instead, both loops here are **progress-based**: the stall
//! clock ([`FrameConfig::stall_timeout`]) applies to each chunk of bytes
//! individually and is reset by any chunk that advances, so a throttled
//! peer moving 1 byte per second finishes its gigabyte eventually, while
//! a peer that stops moving for a whole stall window is reported dead.
//! `read_frame` additionally distinguishes a peer that stalls *between*
//! frames ([`FrameRead::Idle`] — a parked keep-alive connection, not an
//! error) from one that stalls *inside* a frame (an error).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on a single frame. Job envelopes carry whole serialized
/// snapshots, so this is generous; anything larger is a protocol error,
/// not a payload.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Frame I/O tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FrameConfig {
    /// How long a transfer may go without moving a single byte before
    /// the peer is considered dead. This is *not* a whole-frame deadline:
    /// every chunk that advances resets the clock.
    pub stall_timeout: Duration,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            stall_timeout: Duration::from_secs(60),
        }
    }
}

/// What [`read_frame`] found on the wire.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame.
    Frame(String),
    /// The peer closed the connection cleanly before sending a length.
    Closed,
    /// No byte of a new frame arrived within one stall window. The
    /// connection is still healthy — keep-alive servers park here and
    /// poll again; clients awaiting a response treat it as an error.
    Idle,
}

/// Apply the per-chunk timeouts to a stream (both directions).
pub fn configure_stream(stream: &TcpStream, cfg: &FrameConfig) -> Result<(), String> {
    let _ = stream.set_nodelay(true);
    // An accepted socket must not inherit a listener's nonblocking mode
    // (platform-dependent); force blocking with per-chunk timeouts.
    let _ = stream.set_nonblocking(false);
    stream
        .set_read_timeout(Some(cfg.stall_timeout))
        .and_then(|()| stream.set_write_timeout(Some(cfg.stall_timeout)))
        .map_err(|e| format!("socket timeouts: {e}"))
}

fn is_stall(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Write chunks of at most this size so a congested peer that keeps
/// draining *something* counts as progress on every loop turn.
const CHUNK_BYTES: usize = 64 * 1024;

/// Write one frame. Each chunk gets a fresh stall window; only a peer
/// that accepts nothing for a whole window fails the write.
pub fn write_frame(stream: &mut TcpStream, text: &str, cfg: &FrameConfig) -> Result<(), String> {
    let bytes = text.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(format!("frame of {} bytes exceeds the limit", bytes.len()));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    write_progress(stream, &len, cfg)?;
    write_progress(stream, bytes, cfg)?;
    stream.flush().map_err(|e| format!("tcp write: {e}"))
}

fn write_progress(
    stream: &mut TcpStream,
    mut bytes: &[u8],
    cfg: &FrameConfig,
) -> Result<(), String> {
    while !bytes.is_empty() {
        let take = bytes.len().min(CHUNK_BYTES);
        match stream.write(&bytes[..take]) {
            Ok(0) => return Err("tcp write: peer closed the connection".to_owned()),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_stall(&e) => {
                return Err(format!(
                    "tcp write stalled: no bytes accepted for {:?}",
                    cfg.stall_timeout
                ))
            }
            Err(e) => return Err(format!("tcp write: {e}")),
        }
    }
    Ok(())
}

/// Read one frame (see [`FrameRead`] for the three outcomes).
pub fn read_frame(stream: &mut TcpStream, cfg: &FrameConfig) -> Result<FrameRead, String> {
    let mut len = [0u8; 4];
    match read_progress(stream, &mut len) {
        Ok(()) => {}
        Err(ReadEnd::Closed { got: 0 }) => return Ok(FrameRead::Closed),
        Err(ReadEnd::Stalled { got: 0 }) => return Ok(FrameRead::Idle),
        Err(end) => return Err(end.message(cfg)),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(format!("incoming frame of {len} bytes exceeds the limit"));
    }
    // Grow the buffer as bytes actually arrive instead of trusting the
    // untrusted header with one up-front allocation — a peer announcing
    // a huge frame and then stalling costs one stall window, not RAM.
    let mut bytes = Vec::with_capacity((len as usize).min(1 << 20));
    let mut chunk = [0u8; CHUNK_BYTES];
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        read_progress(stream, &mut chunk[..take]).map_err(|end| end.message(cfg))?;
        bytes.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    String::from_utf8(bytes)
        .map(FrameRead::Frame)
        .map_err(|_| "frame is not valid UTF-8".to_owned())
}

/// Why [`read_progress`] stopped short, and how far it got — a stall or
/// close with partial bytes is always mid-frame and therefore fatal.
enum ReadEnd {
    Closed { got: usize },
    Stalled { got: usize },
    Failed(std::io::Error),
}

impl ReadEnd {
    fn message(self, cfg: &FrameConfig) -> String {
        match self {
            ReadEnd::Closed { .. } => "tcp read: peer closed the connection mid-frame".to_owned(),
            ReadEnd::Stalled { .. } => format!(
                "tcp read stalled: no bytes arrived for {:?} mid-frame",
                cfg.stall_timeout
            ),
            ReadEnd::Failed(e) => format!("tcp read: {e}"),
        }
    }
}

/// Fill `buf`, giving every chunk that arrives a fresh stall window.
fn read_progress(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ReadEnd> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(ReadEnd::Closed { got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_stall(&e) => return Err(ReadEnd::Stalled { got }),
            Err(e) => return Err(ReadEnd::Failed(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_round_trip() {
        let cfg = FrameConfig::default();
        let (mut tx, mut rx) = pair();
        configure_stream(&tx, &cfg).unwrap();
        configure_stream(&rx, &cfg).unwrap();
        write_frame(&mut tx, "hello", &cfg).unwrap();
        write_frame(&mut tx, "", &cfg).unwrap();
        match read_frame(&mut rx, &cfg).unwrap() {
            FrameRead::Frame(text) => assert_eq!(text, "hello"),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut rx, &cfg).unwrap() {
            FrameRead::Frame(text) => assert_eq!(text, ""),
            other => panic!("expected empty frame, got {other:?}"),
        }
        drop(tx);
        assert!(matches!(
            read_frame(&mut rx, &cfg).unwrap(),
            FrameRead::Closed
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let cfg = FrameConfig::default();
        let (mut tx, mut rx) = pair();
        configure_stream(&rx, &cfg).unwrap();
        // A hand-rolled header announcing 2 GiB: the reader must refuse
        // before buffering anything.
        tx.write_all(&(2u32 << 30).to_be_bytes()).unwrap();
        assert!(read_frame(&mut rx, &cfg)
            .unwrap_err()
            .contains("exceeds the limit"));
    }

    #[test]
    fn throttled_peer_finishes_a_frame_far_slower_than_the_stall_window() {
        // Satellite regression: the whole transfer takes many multiples
        // of the stall timeout, but every chunk advances, so the
        // progress-based clock never fires. A fixed whole-frame deadline
        // would fail this and requeue the peer's job as a straggler.
        let cfg = FrameConfig {
            stall_timeout: Duration::from_millis(80),
        };
        let (mut tx, mut rx) = pair();
        configure_stream(&tx, &cfg).unwrap();
        configure_stream(&rx, &cfg).unwrap();
        let payload = "x".repeat(4096);
        let reader = std::thread::spawn({
            let expect = payload.clone();
            move || match read_frame(&mut rx, &cfg).unwrap() {
                FrameRead::Frame(text) => assert_eq!(text, expect),
                other => panic!("expected frame, got {other:?}"),
            }
        });
        // Trickle the frame by hand: header, then 16 slices of the body
        // with inter-chunk delays summing to ~4× the stall window.
        let bytes = payload.as_bytes();
        tx.write_all(&(bytes.len() as u32).to_be_bytes()).unwrap();
        for slice in bytes.chunks(bytes.len() / 16) {
            std::thread::sleep(Duration::from_millis(20));
            tx.write_all(slice).unwrap();
        }
        tx.flush().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn stalled_peer_mid_frame_is_an_error_and_idle_between_frames_is_not() {
        let cfg = FrameConfig {
            stall_timeout: Duration::from_millis(60),
        };
        let (mut tx, mut rx) = pair();
        configure_stream(&rx, &cfg).unwrap();
        // No bytes at all: idle, not an error (keep-alive parking).
        assert!(matches!(
            read_frame(&mut rx, &cfg).unwrap(),
            FrameRead::Idle
        ));
        // Half a header then silence: a mid-frame stall is fatal.
        tx.write_all(&[0, 0]).unwrap();
        tx.flush().unwrap();
        assert!(read_frame(&mut rx, &cfg).unwrap_err().contains("stalled"));
    }
}
