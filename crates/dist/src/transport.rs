//! The transport seam: the work-stealing protocol, expressed once.
//!
//! The protocol of a distributed run — *publish* a job for exclusive
//! claiming, *claim* it under a lease, *deliver* the result, re-publish
//! straggling leases with backoff, compare-and-discard duplicate
//! completions, *stop* — is independent of the medium carrying the bytes.
//! [`Transport`] captures exactly that seam: five operations on **opaque,
//! length-delimited wire envelopes** (the `wire.rs` v1 messages produced
//! by [`crate::job::encode_job`] / [`crate::job::encode_result`]), with
//! no knowledge of
//! jobs, results, pools or symbols. [`Broker`] layers the protocol on
//! top of any transport: it encodes/decodes envelopes, verifies the
//! determinism invariant on duplicate deliveries, and records diverging
//! duplicates as conflicts — once, for every backend.
//!
//! Two transports implement the seam:
//!
//! * [`FsTransport`](crate::broker::FsTransport) — a spool directory on a
//!   shared filesystem; claiming is one atomic rename.
//! * [`TcpBroker`](crate::tcp::TcpBroker) /
//!   [`TcpClient`](crate::tcp::TcpClient) — a coordinator-side socket
//!   listener with leases tracked in coordinator memory; claiming is one
//!   framed request/response exchange.
//!
//! Determinism does not depend on the transport any more than it depends
//! on the queue: results are pure functions of job bytes, so the only
//! transport-visible failure mode — a lost worker or connection — turns
//! into a straggler lease, a re-publication, and at worst a discarded
//! duplicate.

use std::time::Duration;

use crate::job::{decode_job, decode_result, encode_job, encode_result, Job, JobResult};
use crate::queue::{strip_nondeterminism, JobQueue, QueueStats};

/// An envelope handed out by [`Transport::claim`]: the job id the
/// transport leased plus the opaque wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claimed {
    /// The published job id (transports index leases and deliveries by
    /// it; the envelope body is opaque to them).
    pub id: u64,
    /// The published wire envelope, byte-for-byte.
    pub envelope: String,
}

/// What happened to a delivered envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivered {
    /// First delivery for this job id; the envelope was stored.
    Accepted,
    /// A delivery for this id already exists. The existing envelope is
    /// returned so the protocol layer can compare the two and either
    /// discard the newcomer ([`Transport::discard_duplicate`]) or record
    /// a divergence ([`Transport::record_conflict`]).
    Duplicate {
        /// The previously delivered envelope, byte-for-byte.
        existing: String,
    },
}

/// A medium for the work-stealing protocol. Implementations move opaque
/// envelopes and track leases; everything protocol-shaped (encoding,
/// duplicate comparison, conflict semantics) lives in [`Broker`].
///
/// All methods take `&self`: transports are internally synchronized and
/// shared between coordinator and worker threads/processes.
pub trait Transport: Send + Sync {
    /// Make an envelope available for exclusive claiming under `id`
    /// (coordinator side, and transport-internally for re-publication).
    /// Publishing the same id again is allowed — speculative duplicates
    /// and straggler retries enter this way — and each publication is
    /// claimable exactly once. Claims are handed out lowest id first.
    fn publish(&self, id: u64, envelope: &str) -> Result<(), String>;

    /// Exclusively claim the next published envelope and start a lease
    /// for `worker` (worker side). Returns `None` when nothing is
    /// claimable — including after [`Transport::stop`], which revokes
    /// all pending publications.
    fn claim(&self, worker: &str) -> Result<Option<Claimed>, String>;

    /// Renew the lease on `id`: the worker is alive and still computing,
    /// so the lease clock restarts and a legitimately long job is not
    /// requeued as a straggler by [`Transport::requeue_expired`].
    /// Best-effort — a missed heartbeat degrades to a spurious requeue
    /// whose duplicate result is compared and discarded, never to lost
    /// work — so the default is a no-op for media without a cheap renew.
    fn heartbeat(&self, _worker: &str, _id: u64) -> Result<(), String> {
        Ok(())
    }

    /// Deliver a result envelope for `id`, ending its leases (worker
    /// side). The first delivery per id wins; later ones return
    /// [`Delivered::Duplicate`] with the stored envelope, leaving it to
    /// the protocol layer to compare.
    fn deliver(&self, worker: &str, id: u64, envelope: &str) -> Result<Delivered, String>;

    /// Record that a duplicate delivery for `id` matched the stored one
    /// and was discarded (protocol layer, after comparing).
    fn discard_duplicate(&self, worker: &str, id: u64) -> Result<(), String>;

    /// Record that a duplicate delivery for `id` **diverged** from the
    /// stored one — the determinism invariant is broken. The envelope is
    /// kept for post-mortem and the transport reports unhealthy from now
    /// on ([`Transport::conflicts`]).
    fn record_conflict(&self, worker: &str, id: u64, envelope: &str) -> Result<(), String>;

    /// The delivered envelope for `id`, if any (coordinator side).
    /// Non-destructive and idempotent — [`Transport::forget`] is the
    /// destructive counterpart.
    fn fetch(&self, id: u64) -> Result<Option<String>, String>;

    /// Retire `id` (coordinator side): drop its pending publications,
    /// leases and stored delivery, and discard (never store) any later
    /// delivery for it. Idempotent; unknown ids are a no-op. Called once
    /// the protocol layer has absorbed or abandoned the id, so a
    /// long-lived transport retains no per-job state.
    fn forget(&self, id: u64) -> Result<(), String>;

    /// Re-publish leases older than [`requeue_backoff`]`(base_timeout,
    /// prior requeues of the id)` whose id has no delivery — the
    /// anti-straggler half of work-stealing. Each lease is re-published
    /// at most once. Returns how many envelopes were re-published
    /// (coordinator side).
    fn requeue_expired(&self, base_timeout: Duration) -> Result<usize, String>;

    /// Stop handing out claims and tell idle workers to exit
    /// (coordinator side).
    fn stop(&self) -> Result<(), String>;

    /// Whether [`Transport::stop`] has been requested (worker side).
    fn stopped(&self) -> Result<bool, String>;

    /// Human-readable descriptions of recorded conflicts (empty =
    /// healthy).
    fn conflicts(&self) -> Result<Vec<String>, String>;

    /// Steal-loop counters.
    fn counters(&self) -> Result<QueueStats, String>;
}

/// How long a lease must be idle before its `n`-th re-publication:
/// `base × 2^min(n, 6)`. Shared by every transport so a legitimately
/// long-running job is retried with the same exponential backoff
/// whatever medium carries it.
pub fn requeue_backoff(base: Duration, prior_requeues: u32) -> Duration {
    base.saturating_mul(1 << prior_requeues.min(6))
}

/// The work-stealing protocol over any [`Transport`]: a [`JobQueue`]
/// whose job/result encoding, duplicate compare-and-discard and conflict
/// recording are written once, here, against opaque envelopes.
#[derive(Debug)]
pub struct Broker<T> {
    transport: T,
}

impl<T: Transport> Broker<T> {
    /// Wrap a transport in the protocol layer.
    pub fn new(transport: T) -> Broker<T> {
        Broker { transport }
    }

    /// The underlying transport (for medium-specific operations:
    /// spool freshness checks, listener addresses, …).
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

impl<T: Transport> JobQueue for Broker<T> {
    fn submit(&self, job: &Job) -> Result<(), String> {
        let _span =
            affidavit_obs::span_with("dist.publish", vec![("job".to_owned(), job.id.to_string())]);
        self.transport.publish(job.id, &encode_job(job))
    }

    fn steal(&self, worker: &str) -> Result<Option<Job>, String> {
        let _span = affidavit_obs::span("dist.claim");
        match self.transport.claim(worker)? {
            None => Ok(None),
            Some(claimed) => decode_job(&claimed.envelope).map(Some),
        }
    }

    fn heartbeat(&self, worker: &str, id: u64) -> Result<(), String> {
        self.transport.heartbeat(worker, id)
    }

    fn complete(&self, worker: &str, result: &JobResult) -> Result<(), String> {
        let _span = affidavit_obs::span_with(
            "dist.deliver",
            vec![("job".to_owned(), result.id.to_string())],
        );
        let envelope = encode_result(result);
        match self.transport.deliver(worker, result.id, &envelope)? {
            Delivered::Accepted => Ok(()),
            Delivered::Duplicate { existing } => {
                // A duplicate (stolen twice, or a straggler retry): the
                // engine is deterministic, so apart from the worker name
                // and wall time the bytes must agree.
                let existing = decode_result(&existing)?;
                // Instance-cache misses are exempt from the comparison: a
                // cold and a warm worker racing on a requeued digest-only
                // job legitimately produce different bytes.
                if crate::job::is_instance_miss(&existing)
                    || crate::job::is_instance_miss(result)
                    || strip_nondeterminism(&existing) == strip_nondeterminism(result)
                {
                    self.transport.discard_duplicate(worker, result.id)
                } else {
                    self.transport.record_conflict(worker, result.id, &envelope)
                }
            }
        }
    }

    fn fetch_result(&self, id: u64) -> Result<Option<JobResult>, String> {
        match self.transport.fetch(id)? {
            None => Ok(None),
            Some(envelope) => decode_result(&envelope).map(Some),
        }
    }

    fn forget(&self, id: u64) -> Result<(), String> {
        self.transport.forget(id)
    }

    fn request_shutdown(&self) -> Result<(), String> {
        self.transport.stop()
    }

    fn shutdown_requested(&self) -> Result<bool, String> {
        self.transport.stopped()
    }

    fn check_health(&self) -> Result<(), String> {
        match self.transport.conflicts()?.first() {
            None => Ok(()),
            Some(conflict) => Err(conflict.clone()),
        }
    }

    fn stats(&self) -> Result<QueueStats, String> {
        self.transport.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_secs(30);
        assert_eq!(requeue_backoff(base, 0), base);
        assert_eq!(requeue_backoff(base, 1), base * 2);
        assert_eq!(requeue_backoff(base, 3), base * 8);
        assert_eq!(requeue_backoff(base, 6), base * 64);
        // Capped: retry 100 waits no longer than retry 6.
        assert_eq!(requeue_backoff(base, 100), base * 64);
    }
}
