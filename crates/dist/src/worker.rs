//! The worker loop: steal, execute, deliver, repeat.
//!
//! The same loop serves both deployment shapes — in-process threads over
//! an [`InProcessQueue`](crate::queue::InProcessQueue) and the
//! `affidavit-worker` binary over an [`FsBroker`](crate::broker::FsBroker)
//! — because [`JobQueue`] hides the transport.

use std::time::Duration;

use crate::job::{process_job, JobOutcome};
use crate::queue::JobQueue;

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs executed (including failed ones).
    pub processed: usize,
    /// Jobs whose outcome was [`JobOutcome::Failed`].
    pub failed: usize,
}

/// Steal and execute jobs until shutdown is requested. An empty queue
/// without a shutdown request means the coordinator may still be
/// submitting — the worker naps for `poll` and tries again. Once
/// shutdown is requested the queue stops handing out work (pending jobs
/// at that point belong to an aborting run or are redundant duplicates),
/// so the worker finishes its current job at most and exits.
pub fn run_worker(
    queue: &dyn JobQueue,
    worker_id: &str,
    poll: Duration,
) -> Result<WorkerStats, String> {
    let mut stats = WorkerStats::default();
    loop {
        match queue.steal(worker_id)? {
            Some(job) => {
                let result = process_job(&job, worker_id);
                if matches!(result.outcome, JobOutcome::Failed { .. }) {
                    stats.failed += 1;
                }
                stats.processed += 1;
                queue.complete(worker_id, &result)?;
            }
            None if queue.shutdown_requested()? => return Ok(stats),
            None => std::thread::sleep(poll),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobPayload};
    use crate::queue::InProcessQueue;
    use crate::wire::WireInstance;
    use affidavit_core::AffidavitConfig;

    fn tiny_job(id: u64) -> Job {
        Job {
            id,
            name: format!("t{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into(), "y".into()],
                    source: vec![vec![0]],
                    target: vec![vec![1]],
                },
                config: AffidavitConfig::paper_id(),
            },
        }
    }

    #[test]
    fn processes_jobs_then_exits_on_shutdown() {
        let queue = InProcessQueue::new();
        for id in 0..3 {
            queue.submit(&tiny_job(id)).unwrap();
        }
        let stats = std::thread::scope(|scope| {
            let handle = scope.spawn(|| run_worker(&queue, "w", Duration::from_millis(1)));
            for id in 0..3 {
                while queue.fetch_result(id).unwrap().is_none() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            queue.request_shutdown().unwrap();
            handle.join().expect("worker thread")
        })
        .unwrap();
        assert_eq!(stats.processed, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn shutdown_abandons_pending_work() {
        // The abort path: once shutdown is requested, pending jobs are
        // not handed out any more — a deadline abort must not degrade
        // into "finish everything first".
        let queue = InProcessQueue::new();
        queue.submit(&tiny_job(0)).unwrap();
        queue.request_shutdown().unwrap();
        let stats = run_worker(&queue, "w", Duration::from_millis(1)).unwrap();
        assert_eq!(stats.processed, 0);
        assert!(queue.fetch_result(0).unwrap().is_none());
    }
}
