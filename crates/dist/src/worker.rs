//! The worker loop: steal, execute, deliver, repeat.
//!
//! The same loop serves every deployment shape — in-process threads over
//! an [`InProcessQueue`](crate::queue::InProcessQueue), and the
//! `affidavit-worker` binary over either transport
//! ([`FsBroker`](crate::broker::FsBroker) or
//! [`TcpClient`](crate::tcp::TcpClient)) — because [`JobQueue`] hides
//! the medium. [`run_worker_with_reconnect`] wraps the loop for the
//! binary: a queue error (spool directory gone, coordinator socket dead)
//! triggers a bounded probe-and-backoff reconnect instead of an
//! immediate crash, and a broker that never comes back is reported as
//! [`WorkerExit::BrokerLost`] so the process can exit with a distinct
//! code.

use std::time::{Duration, Instant};

use crate::job::{process_job_with_cache, InstanceCache, JobOutcome};
use crate::queue::JobQueue;

/// How often a worker renews the lease on the job it is computing
/// ([`JobQueue::heartbeat`]). Far below any sensible steal timeout, so a
/// legitimately long job is never requeued as a straggler while its
/// worker is alive; jobs shorter than this never heartbeat at all.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(5);

/// Exit code of `affidavit-worker` when the broker disappeared and did
/// not come back within the reconnect budget (distinct from `1`, the
/// usage/fatal-error code, so supervisors can tell "restart me when the
/// coordinator returns" from "my invocation is wrong").
pub const BROKER_LOST_EXIT_CODE: u8 = 3;

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs executed (including failed ones).
    pub processed: usize,
    /// Jobs whose outcome was [`JobOutcome::Failed`].
    pub failed: usize,
}

/// Steal and execute jobs until shutdown is requested. An empty queue
/// without a shutdown request means the coordinator may still be
/// submitting — the worker naps and tries again, with the nap growing
/// from `poll` up to `poll × 16` over consecutive empty polls (and
/// snapping back to `poll` after a successful steal). The backoff keeps
/// an idle worker from hammering the broker — each empty poll is a
/// directory scan on the fs transport and two exchanges on the tcp
/// transport's keep-alive connection — at the price of at most `poll ×
/// 16` extra latency
/// picking up late work or noticing shutdown. Once shutdown is
/// requested the queue stops handing out work (pending jobs at that
/// point belong to an aborting run or are redundant duplicates), so the
/// worker finishes its current job at most and exits.
pub fn run_worker(
    queue: &dyn JobQueue,
    worker_id: &str,
    poll: Duration,
) -> Result<WorkerStats, String> {
    let mut stats = WorkerStats::default();
    let mut idle_naps = 0u32;
    // Content-addressed instances survive across jobs: the whole point
    // of digest-only expansion jobs is that the instance crosses the
    // transport once per fleet, not once per job.
    let mut cache = InstanceCache::default();
    loop {
        match queue.steal(worker_id)? {
            Some(job) => {
                idle_naps = 0;
                let _span = affidavit_obs::span_with(
                    "worker.job",
                    vec![
                        ("worker".to_owned(), worker_id.to_owned()),
                        ("job".to_owned(), job.id.to_string()),
                        ("name".to_owned(), job.name.clone()),
                    ],
                );
                let result = with_heartbeats(queue, worker_id, job.id, HEARTBEAT_INTERVAL, || {
                    process_job_with_cache(&job, worker_id, &mut cache)
                });
                if matches!(result.outcome, JobOutcome::Failed { .. }) {
                    stats.failed += 1;
                }
                stats.processed += 1;
                queue.complete(worker_id, &result)?;
            }
            None if queue.shutdown_requested()? => return Ok(stats),
            None => {
                std::thread::sleep(poll.saturating_mul(1 << idle_naps.min(4)));
                idle_naps = idle_naps.saturating_add(1);
            }
        }
    }
}

/// Run `work` with a lease-renewal ticker beside it: every `interval`
/// until the closure returns, [`JobQueue::heartbeat`] tells the broker
/// this worker is alive and still computing `id`. Heartbeats are
/// best-effort — a failed renewal is ignored, because the worst case (a
/// spurious straggler requeue) already resolves itself through the
/// duplicate compare-and-discard path, while failing the job here would
/// turn a transient broker hiccup into lost work. The ticker exits
/// promptly when the work finishes: it parks on a channel the closure's
/// end hangs up.
fn with_heartbeats<R>(
    queue: &dyn JobQueue,
    worker_id: &str,
    id: u64,
    interval: Duration,
    work: impl FnOnce() -> R,
) -> R {
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let started = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || loop {
            match done_rx.recv_timeout(interval) {
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let _ = queue.heartbeat(worker_id, id);
                    // Each renewal doubles as a progress beacon: a point
                    // event in the local stream, plus a diagnostic line
                    // on stderr (inherited by the coordinator for child
                    // workers) when observability is on.
                    if affidavit_obs::enabled() {
                        let elapsed = started.elapsed().as_secs();
                        affidavit_obs::point(
                            "worker.heartbeat",
                            vec![
                                ("worker".to_owned(), worker_id.to_owned()),
                                ("job".to_owned(), id.to_string()),
                                ("elapsed_secs".to_owned(), elapsed.to_string()),
                            ],
                        );
                        affidavit_obs::diag(
                            "worker.heartbeat",
                            &format!("worker={worker_id} job={id} elapsed={elapsed}s"),
                        );
                    }
                }
                _ => return, // sender dropped: the job is done
            }
        });
        let result = work();
        drop(done_tx);
        result
    })
}

/// How a resilient worker run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerExit {
    /// Clean shutdown: the broker requested stop and the queue drained.
    Completed(WorkerStats),
    /// The broker vanished (spool directory removed, coordinator socket
    /// dead) and stayed unreachable through the whole reconnect budget.
    BrokerLost {
        /// Probe attempts spent before giving up.
        attempts: usize,
        /// The queue error that started the final reconnect sequence.
        error: String,
    },
}

/// [`run_worker`], wrapped in a bounded reconnect loop for real worker
/// processes. A queue error starts a probe sequence: sleep with
/// exponential backoff (`poll × 2^attempt`, capped at `poll × 64`), then
/// ask `probe` whether the broker is reachable again — re-entering the
/// steal loop as soon as it is. After `max_attempts` failed probes the
/// worker gives up with [`WorkerExit::BrokerLost`]. Attempts accumulate
/// over the process lifetime, so a broker that flaps forever (or a
/// persistent non-transport error) also terminates.
pub fn run_worker_with_reconnect(
    queue: &dyn JobQueue,
    probe: &dyn Fn() -> Result<(), String>,
    worker_id: &str,
    poll: Duration,
    max_attempts: usize,
) -> WorkerExit {
    let mut attempts = 0usize;
    loop {
        let error = match run_worker(queue, worker_id, poll) {
            Ok(stats) => return WorkerExit::Completed(stats),
            Err(error) => error,
        };
        eprintln!("affidavit-worker {worker_id}: broker unreachable: {error}");
        loop {
            attempts += 1;
            if attempts > max_attempts {
                return WorkerExit::BrokerLost {
                    attempts: attempts - 1,
                    error,
                };
            }
            std::thread::sleep(poll.saturating_mul(1 << attempts.min(6) as u32));
            if probe().is_ok() {
                eprintln!(
                    "affidavit-worker {worker_id}: broker reachable again \
                     (attempt {attempts}), resuming"
                );
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobPayload};
    use crate::queue::InProcessQueue;
    use crate::wire::WireInstance;
    use affidavit_core::AffidavitConfig;

    fn tiny_job(id: u64) -> Job {
        Job {
            id,
            name: format!("t{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into(), "y".into()],
                    source: vec![vec![0]],
                    target: vec![vec![1]],
                },
                config: AffidavitConfig::paper_id(),
            },
        }
    }

    #[test]
    fn processes_jobs_then_exits_on_shutdown() {
        let queue = InProcessQueue::new();
        for id in 0..3 {
            queue.submit(&tiny_job(id)).unwrap();
        }
        let stats = std::thread::scope(|scope| {
            let handle = scope.spawn(|| run_worker(&queue, "w", Duration::from_millis(1)));
            for id in 0..3 {
                while queue.fetch_result(id).unwrap().is_none() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            queue.request_shutdown().unwrap();
            handle.join().expect("worker thread")
        })
        .unwrap();
        assert_eq!(stats.processed, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn long_jobs_heartbeat_their_lease_and_short_ones_do_not() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Recording {
            inner: InProcessQueue,
            beats: AtomicUsize,
        }
        impl JobQueue for Recording {
            fn submit(&self, job: &Job) -> Result<(), String> {
                self.inner.submit(job)
            }
            fn steal(&self, worker: &str) -> Result<Option<Job>, String> {
                self.inner.steal(worker)
            }
            fn heartbeat(&self, _worker: &str, _id: u64) -> Result<(), String> {
                self.beats.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn complete(&self, worker: &str, r: &crate::job::JobResult) -> Result<(), String> {
                self.inner.complete(worker, r)
            }
            fn fetch_result(&self, id: u64) -> Result<Option<crate::job::JobResult>, String> {
                self.inner.fetch_result(id)
            }
            fn request_shutdown(&self) -> Result<(), String> {
                self.inner.request_shutdown()
            }
            fn shutdown_requested(&self) -> Result<bool, String> {
                self.inner.shutdown_requested()
            }
            fn check_health(&self) -> Result<(), String> {
                self.inner.check_health()
            }
            fn stats(&self) -> Result<crate::queue::QueueStats, String> {
                self.inner.stats()
            }
        }
        let queue = Recording {
            inner: InProcessQueue::new(),
            beats: AtomicUsize::new(0),
        };
        // A job outliving several intervals renews its lease repeatedly...
        with_heartbeats(&queue, "w", 7, Duration::from_millis(10), || {
            std::thread::sleep(Duration::from_millis(55))
        });
        let beats = queue.beats.load(Ordering::SeqCst);
        assert!(beats >= 2, "a 55ms job at a 10ms interval beat {beats}×");
        // ...and the ticker stops with the job: no further renewals.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(queue.beats.load(Ordering::SeqCst), beats);
        // A job far shorter than the interval never heartbeats.
        with_heartbeats(&queue, "w", 8, Duration::from_secs(60), || {});
        assert_eq!(queue.beats.load(Ordering::SeqCst), beats);
    }

    #[test]
    fn reconnect_gives_up_after_the_attempt_budget() {
        // A queue whose broker is permanently gone: every steal fails.
        struct DeadQueue;
        impl JobQueue for DeadQueue {
            fn submit(&self, _: &Job) -> Result<(), String> {
                Err("gone".into())
            }
            fn steal(&self, _: &str) -> Result<Option<Job>, String> {
                Err("spool removed".into())
            }
            fn complete(&self, _: &str, _: &crate::job::JobResult) -> Result<(), String> {
                Err("gone".into())
            }
            fn fetch_result(&self, _: u64) -> Result<Option<crate::job::JobResult>, String> {
                Err("gone".into())
            }
            fn request_shutdown(&self) -> Result<(), String> {
                Err("gone".into())
            }
            fn shutdown_requested(&self) -> Result<bool, String> {
                Err("gone".into())
            }
            fn check_health(&self) -> Result<(), String> {
                Err("gone".into())
            }
            fn stats(&self) -> Result<crate::queue::QueueStats, String> {
                Err("gone".into())
            }
        }
        let exit = run_worker_with_reconnect(
            &DeadQueue,
            &|| Err("still gone".to_owned()),
            "w",
            Duration::from_millis(1),
            3,
        );
        assert_eq!(
            exit,
            WorkerExit::BrokerLost {
                attempts: 3,
                error: "spool removed".to_owned()
            }
        );
    }

    #[test]
    fn reconnect_resumes_when_the_probe_recovers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A queue that fails twice, then works: the worker must ride out
        // the outage and still reach a clean shutdown.
        struct FlakyQueue {
            inner: InProcessQueue,
            failures_left: AtomicUsize,
        }
        impl JobQueue for FlakyQueue {
            fn submit(&self, job: &Job) -> Result<(), String> {
                self.inner.submit(job)
            }
            fn steal(&self, worker: &str) -> Result<Option<Job>, String> {
                if self
                    .failures_left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err("transient outage".into());
                }
                self.inner.steal(worker)
            }
            fn complete(&self, worker: &str, r: &crate::job::JobResult) -> Result<(), String> {
                self.inner.complete(worker, r)
            }
            fn fetch_result(&self, id: u64) -> Result<Option<crate::job::JobResult>, String> {
                self.inner.fetch_result(id)
            }
            fn request_shutdown(&self) -> Result<(), String> {
                self.inner.request_shutdown()
            }
            fn shutdown_requested(&self) -> Result<bool, String> {
                self.inner.shutdown_requested()
            }
            fn check_health(&self) -> Result<(), String> {
                self.inner.check_health()
            }
            fn stats(&self) -> Result<crate::queue::QueueStats, String> {
                self.inner.stats()
            }
        }
        let queue = FlakyQueue {
            inner: InProcessQueue::new(),
            failures_left: AtomicUsize::new(2),
        };
        queue.inner.submit(&tiny_job(0)).unwrap();
        queue.inner.request_shutdown().unwrap();
        // Shutdown is already requested, so after the outage the worker
        // exits cleanly without processing the abandoned job.
        let exit = run_worker_with_reconnect(&queue, &|| Ok(()), "w", Duration::from_millis(1), 10);
        assert_eq!(exit, WorkerExit::Completed(WorkerStats::default()));
    }

    #[test]
    fn shutdown_abandons_pending_work() {
        // The abort path: once shutdown is requested, pending jobs are
        // not handed out any more — a deadline abort must not degrade
        // into "finish everything first".
        let queue = InProcessQueue::new();
        queue.submit(&tiny_job(0)).unwrap();
        queue.request_shutdown().unwrap();
        let stats = run_worker(&queue, "w", Duration::from_millis(1)).unwrap();
        assert_eq!(stats.processed, 0);
        assert!(queue.fetch_result(0).unwrap().is_none());
    }
}
