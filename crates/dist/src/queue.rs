//! The job-queue abstraction and the in-process backend.
//!
//! [`JobQueue`] is the coordination surface between one coordinator and
//! any number of workers. Its contract is deliberately minimal — submit,
//! steal, complete, fetch — because the determinism of a distributed run
//! does not depend on the queue at all: any interleaving of steals and
//! completions yields the same absorbed output, since results are pure
//! functions of their jobs and the coordinator absorbs them in job-id
//! order. The queue only affects *wall time*.
//!
//! Two kinds of backend implement it: [`InProcessQueue`] (worker threads
//! in the same process — tests, doctests, library embedding) and
//! [`Broker`](crate::transport::Broker), the work-stealing protocol over
//! any [`Transport`](crate::transport::Transport) — the spool-directory
//! [`FsBroker`](crate::broker::FsBroker) and the socket-served
//! [`TcpBroker`](crate::tcp::TcpBroker), both driving real
//! `affidavit-worker` processes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::job::{encode_result, Job, JobResult};

/// Steal-loop counters a queue keeps about performed, wasted and
/// recovered work. Both transports surface the same four, so an
/// operator reads one vocabulary whether the run went over a spool
/// directory or a socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successful exclusive claims (each hands one published envelope to
    /// one worker).
    pub steals: usize,
    /// Straggling claims re-published for other workers after the
    /// timeout (with exponential backoff per job id).
    pub requeues: usize,
    /// Results for already-completed job ids (speculative duplicates or
    /// post-steal stragglers) that were checked and discarded.
    pub duplicates_discarded: usize,
    /// Diverging duplicate results — impossible unless the engine's
    /// determinism invariant is broken; any nonzero value fails the run
    /// through [`JobQueue::check_health`].
    pub conflicts: usize,
}

/// Coordination surface between a coordinator and its workers.
///
/// All methods take `&self`: backends are internally synchronized, and
/// workers on other threads (or in other processes) hold their own
/// handle to the same underlying queue.
pub trait JobQueue: Send + Sync {
    /// Enqueue a job (coordinator side). Submitting the same job id twice
    /// is allowed — that is how speculative duplicates and straggler
    /// retries enter the queue.
    fn submit(&self, job: &Job) -> Result<(), String>;

    /// Atomically claim the next available job (worker side). `None`
    /// means the queue is currently empty — the worker should check
    /// [`JobQueue::shutdown_requested`] and otherwise poll again.
    fn steal(&self, worker: &str) -> Result<Option<Job>, String>;

    /// Renew the lease on a stolen job: the worker is alive and still
    /// computing `id`, so backends with straggler requeues restart the
    /// lease clock. Best-effort (a missed heartbeat degrades to a
    /// spurious requeue whose duplicate is discarded); the default is a
    /// no-op for backends without leases, like [`InProcessQueue`].
    fn heartbeat(&self, _worker: &str, _id: u64) -> Result<(), String> {
        Ok(())
    }

    /// Deliver a finished job (worker side). A result for an id that
    /// already has one is compared against the existing result and
    /// discarded; a mismatch — impossible unless the determinism
    /// invariant is broken — is reported by [`JobQueue::check_health`].
    fn complete(&self, worker: &str, result: &JobResult) -> Result<(), String>;

    /// Fetch the result for a job id, if one has arrived (coordinator
    /// side). Non-destructive and idempotent — the coordinator may poll
    /// and re-read; [`JobQueue::forget`] is the destructive counterpart.
    fn fetch_result(&self, id: u64) -> Result<Option<JobResult>, String>;

    /// Retire a job id (coordinator side): drop its pending publications
    /// and stored result, and discard any late delivery for it. Called
    /// after the coordinator has absorbed the result — or abandoned the
    /// batch — so a long-lived queue retains no per-job state and workers
    /// stop computing withdrawn work. Idempotent; forgetting an id that
    /// was never submitted is a no-op. The default is a no-op for
    /// test-only queues that never outlive a run.
    fn forget(&self, _id: u64) -> Result<(), String> {
        Ok(())
    }

    /// Tell idle workers to exit once no work is left (coordinator side).
    fn request_shutdown(&self) -> Result<(), String>;

    /// Whether shutdown has been requested (worker side).
    fn shutdown_requested(&self) -> Result<bool, String>;

    /// Fail if the queue has observed an integrity violation — two
    /// workers returning different bytes for the same job id.
    fn check_health(&self) -> Result<(), String>;

    /// Wasted-work counters.
    fn stats(&self) -> Result<QueueStats, String>;
}

#[derive(Debug, Default)]
struct Inner {
    pending: VecDeque<Job>,
    results: BTreeMap<u64, JobResult>,
    stats: QueueStats,
    stop: bool,
    conflicts: Vec<String>,
    /// Retired-id tracking, compacted: every id below `retired_floor` is
    /// retired, plus the (small, non-contiguous) set above it. Job ids
    /// are monotonic per coordinator and every id is eventually
    /// forgotten, so the floor advances and the set stays near-empty —
    /// O(1) memory over a daemon's lifetime.
    retired_floor: u64,
    retired: std::collections::BTreeSet<u64>,
}

impl Inner {
    fn is_retired(&self, id: u64) -> bool {
        id < self.retired_floor || self.retired.contains(&id)
    }

    fn retire(&mut self, id: u64) {
        if id >= self.retired_floor {
            self.retired.insert(id);
        }
        // Advance the floor over the contiguous retired prefix.
        while self.retired.remove(&self.retired_floor) {
            self.retired_floor += 1;
        }
    }
}

/// A [`JobQueue`] living entirely in this process: a mutex-guarded deque
/// plus a result map. Workers are plain threads running
/// [`run_worker`](crate::worker::run_worker) against it.
#[derive(Debug, Default)]
pub struct InProcessQueue {
    inner: Mutex<Inner>,
}

impl InProcessQueue {
    /// An empty queue.
    pub fn new() -> InProcessQueue {
        InProcessQueue::default()
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, Inner>, String> {
        self.inner
            .lock()
            .map_err(|_| "queue poisoned by a panicking worker".to_owned())
    }

    /// Results currently held — delivered but not yet forgotten. A
    /// well-behaved coordinator drives this back to zero after every
    /// batch; the probe exists so tests (and operators embedding the
    /// queue) can assert it.
    pub fn retained_results(&self) -> usize {
        self.lock().map(|inner| inner.results.len()).unwrap_or(0)
    }

    /// Publications not yet claimed by any worker.
    pub fn pending_jobs(&self) -> usize {
        self.lock().map(|inner| inner.pending.len()).unwrap_or(0)
    }
}

impl JobQueue for InProcessQueue {
    fn submit(&self, job: &Job) -> Result<(), String> {
        self.lock()?.pending.push_back(job.clone());
        Ok(())
    }

    fn steal(&self, _worker: &str) -> Result<Option<Job>, String> {
        let mut inner = self.lock()?;
        // Shutdown means "stop taking new work", not "drain" — this is
        // what lets a coordinator's deadline abort actually abort.
        if inner.stop {
            return Ok(None);
        }
        // Skip (and drop) publications of retired ids: their coordinator
        // has already withdrawn the work.
        let job = loop {
            match inner.pending.pop_front() {
                Some(job) if inner.is_retired(job.id) => continue,
                other => break other,
            }
        };
        if job.is_some() {
            inner.stats.steals += 1;
        }
        Ok(job)
    }

    fn complete(&self, _worker: &str, result: &JobResult) -> Result<(), String> {
        let mut inner = self.lock()?;
        if inner.is_retired(result.id) {
            // A late delivery for withdrawn work (the job was in flight
            // when the coordinator forgot it): discard, don't store.
            inner.stats.duplicates_discarded += 1;
            return Ok(());
        }
        match inner.results.get(&result.id) {
            None => {
                inner.results.insert(result.id, result.clone());
            }
            Some(existing) => {
                // A duplicate (stolen twice, or a straggler retry): the
                // engine is deterministic, so apart from the worker name
                // and wall time the bytes must agree. Instance-cache
                // misses are exempt: a cold and a warm worker racing on a
                // requeued digest-only job legitimately diverge.
                if crate::job::is_instance_miss(existing)
                    || crate::job::is_instance_miss(result)
                    || strip_nondeterminism(existing) == strip_nondeterminism(result)
                {
                    inner.stats.duplicates_discarded += 1;
                } else {
                    let conflict = format!(
                        "job {} produced diverging results from workers {:?} and {:?}",
                        result.id, existing.worker, result.worker
                    );
                    inner.conflicts.push(conflict);
                    inner.stats.conflicts += 1;
                }
            }
        }
        Ok(())
    }

    fn fetch_result(&self, id: u64) -> Result<Option<JobResult>, String> {
        Ok(self.lock()?.results.get(&id).cloned())
    }

    fn forget(&self, id: u64) -> Result<(), String> {
        let mut inner = self.lock()?;
        inner.pending.retain(|job| job.id != id);
        inner.results.remove(&id);
        inner.retire(id);
        Ok(())
    }

    fn request_shutdown(&self) -> Result<(), String> {
        self.lock()?.stop = true;
        Ok(())
    }

    fn shutdown_requested(&self) -> Result<bool, String> {
        Ok(self.lock()?.stop)
    }

    fn check_health(&self) -> Result<(), String> {
        match self.lock()?.conflicts.first() {
            None => Ok(()),
            Some(c) => Err(c.clone()),
        }
    }

    fn stats(&self) -> Result<QueueStats, String> {
        Ok(self.lock()?.stats)
    }
}

/// Canonical bytes of a result with the legitimately run-dependent fields
/// (worker name, wall time) blanked — what "the same result" means when
/// comparing duplicates.
pub(crate) fn strip_nondeterminism(result: &JobResult) -> String {
    let mut stripped = result.clone();
    stripped.worker = String::new();
    match &mut stripped.outcome {
        crate::job::JobOutcome::Explained { millis, .. }
        | crate::job::JobOutcome::Expanded { millis, .. } => *millis = 0,
        crate::job::JobOutcome::Failed { .. } => {}
    }
    encode_result(&stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, JobPayload};
    use crate::wire::WireInstance;

    fn dummy_job(id: u64) -> Job {
        Job {
            id,
            name: format!("job-{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into()],
                    source: vec![vec![0]],
                    target: vec![vec![0]],
                },
                config: affidavit_core::AffidavitConfig::paper_id(),
            },
        }
    }

    fn dummy_result(id: u64, worker: &str, reason: &str) -> JobResult {
        JobResult {
            id,
            name: format!("job-{id}"),
            worker: worker.to_owned(),
            outcome: JobOutcome::Failed {
                reason: reason.to_owned(),
            },
        }
    }

    #[test]
    fn steal_order_is_fifo_and_exclusive() {
        let q = InProcessQueue::new();
        q.submit(&dummy_job(0)).unwrap();
        q.submit(&dummy_job(1)).unwrap();
        assert_eq!(q.steal("a").unwrap().unwrap().id, 0);
        assert_eq!(q.steal("b").unwrap().unwrap().id, 1);
        assert!(q.steal("a").unwrap().is_none());
    }

    #[test]
    fn duplicate_results_are_discarded_and_counted() {
        let q = InProcessQueue::new();
        q.complete("a", &dummy_result(7, "a", "same")).unwrap();
        q.complete("b", &dummy_result(7, "b", "same")).unwrap();
        assert_eq!(q.stats().unwrap().duplicates_discarded, 1);
        assert!(q.check_health().is_ok());
        assert_eq!(q.fetch_result(7).unwrap().unwrap().worker, "a");
    }

    #[test]
    fn diverging_duplicates_poison_health() {
        let q = InProcessQueue::new();
        q.complete("a", &dummy_result(7, "a", "one")).unwrap();
        q.complete("b", &dummy_result(7, "b", "two")).unwrap();
        assert!(q.check_health().unwrap_err().contains("diverging"));
    }

    #[test]
    fn forget_withdraws_pending_work_and_drops_results() {
        let q = InProcessQueue::new();
        q.submit(&dummy_job(0)).unwrap();
        q.submit(&dummy_job(1)).unwrap();
        q.forget(0).unwrap();
        // The withdrawn job is never handed out...
        assert_eq!(q.steal("w").unwrap().unwrap().id, 1);
        assert!(q.steal("w").unwrap().is_none());
        assert_eq!(q.pending_jobs(), 0);
        // ...and a late delivery for it (the in-flight case) is discarded
        // without being stored or flagged as a conflict.
        q.complete("w", &dummy_result(0, "w", "late")).unwrap();
        assert!(q.fetch_result(0).unwrap().is_none());
        assert_eq!(q.stats().unwrap().duplicates_discarded, 1);
        assert!(q.check_health().is_ok());
        // Absorb-then-forget leaves nothing retained.
        q.complete("w", &dummy_result(1, "w", "done")).unwrap();
        assert!(q.fetch_result(1).unwrap().is_some());
        q.forget(1).unwrap();
        assert_eq!(q.retained_results(), 0);
        // Forgetting is idempotent and tolerant of unknown ids.
        q.forget(1).unwrap();
        q.forget(999).unwrap();
    }

    #[test]
    fn retired_id_tracking_compacts_to_a_floor() {
        let q = InProcessQueue::new();
        // Forget out of order; the floor must still swallow the prefix.
        for id in [1u64, 0, 2, 4, 3] {
            q.forget(id).unwrap();
        }
        let inner = q.lock().unwrap();
        assert_eq!(inner.retired_floor, 5);
        assert!(inner.retired.is_empty());
        assert!(inner.is_retired(4));
        assert!(!inner.is_retired(5));
    }

    #[test]
    fn instance_miss_duplicates_never_conflict() {
        use crate::job::INSTANCE_MISS_PREFIX;
        // A cold worker's miss failure races a warm worker's real result
        // on a requeued id — in either order, that is a discard, not a
        // determinism violation.
        for (first, second) in [("real", "miss"), ("miss", "real")] {
            let q = InProcessQueue::new();
            let result = |tag: &str, worker: &str| {
                if tag == "miss" {
                    dummy_result(3, worker, &format!("{INSTANCE_MISS_PREFIX}deadbeef"))
                } else {
                    dummy_result(3, worker, "real result stand-in")
                }
            };
            q.complete("a", &result(first, "a")).unwrap();
            q.complete("b", &result(second, "b")).unwrap();
            assert!(q.check_health().is_ok(), "{first} then {second}");
            assert_eq!(q.stats().unwrap().duplicates_discarded, 1);
        }
    }

    #[test]
    fn shutdown_flag_is_sticky() {
        let q = InProcessQueue::new();
        assert!(!q.shutdown_requested().unwrap());
        q.request_shutdown().unwrap();
        assert!(q.shutdown_requested().unwrap());
    }
}
