//! The coordinator: fan jobs out, absorb results deterministically.
//!
//! [`execute_jobs`] runs a job list to completion on either backend and
//! returns the results keyed by job id. [`absorb_result`] merges one
//! result into the coordinator's pool — the cross-process version of the
//! ScratchPool absorb step: the worker's pool suffix is re-interned in
//! worker order and the result's symbols are rewritten through the
//! returned [`SymRemap`](affidavit_table::SymRemap). Because absorption
//! happens in job-id order and each result is a pure function of its job,
//! the coordinator's final state is independent of worker count,
//! scheduling, duplicates and straggler retries.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use affidavit_core::profiling::{
    outcome_for, paired_csv_stems, stage_file_pair, ProfileOptions, SnapshotProfile, TableOutcome,
    TableProfile,
};
use affidavit_core::{AffidavitConfig, Explanation, ProblemInstance};

use crate::broker::{spawn_workers, worker_binary, FsBroker, WorkerEndpoint, WorkerHandle};
use crate::job::{Job, JobOutcome, JobPayload, JobResult};
use crate::queue::{InProcessQueue, JobQueue, QueueStats};
use crate::tcp::TcpBroker;
use crate::transport::{Broker, Transport};
use crate::wire::WireInstance;
use crate::worker::run_worker;

/// Where the workers live, and which transport carries the protocol.
#[derive(Debug, Clone, Default)]
pub enum DistBackend {
    /// Worker threads inside this process over an
    /// [`InProcessQueue`] — tests, doctests, library embedding.
    #[default]
    InProcess,
    /// Real `affidavit-worker` child processes over an [`FsBroker`]
    /// spool directory (requires a filesystem the coordinator and all
    /// workers share).
    ChildProcesses {
        /// Spool directory; `None` = a fresh temp directory, removed on
        /// completion. Point it at shared storage to let externally
        /// started workers steal from the same run.
        broker_dir: Option<PathBuf>,
        /// Worker executable; `None` = resolve via
        /// [`worker_binary`].
        worker_bin: Option<PathBuf>,
    },
    /// Real `affidavit-worker` child processes over a
    /// [`TcpBroker`] — no shared filesystem needed; externally started
    /// workers dial `affidavit-worker --connect HOST:PORT`.
    Tcp {
        /// Coordinator bind address; `None` = `127.0.0.1:0` (loopback,
        /// OS-chosen port). Bind a routable address to accept workers
        /// from other machines.
        listen: Option<String>,
        /// Worker executable; `None` = resolve via
        /// [`worker_binary`].
        worker_bin: Option<PathBuf>,
    },
}

/// Knobs of a distributed run.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Worker count (threads or child processes). `0` autosizes to one
    /// per hardware thread ([`std::thread::available_parallelism`]).
    pub workers: usize,
    /// Transport and worker placement.
    pub backend: DistBackend,
    /// How many copies of every job to enqueue (speculative duplicate
    /// dispatch; the extras are stolen by idle workers and their results
    /// discarded). `1` — the default — disables it.
    pub redundancy: usize,
    /// Claims older than this without a result are re-published for other
    /// workers to steal.
    pub steal_timeout: Duration,
    /// Hard cap on the whole run.
    pub deadline: Duration,
    /// Worker/coordinator polling nap.
    pub poll: Duration,
    /// Run [`Explanation::validate`] on every absorbed result (full
    /// re-application of the learned functions — slower, but proves the
    /// worker's explanation against the coordinator's own data).
    pub validate: bool,
}

impl Default for DistOptions {
    fn default() -> DistOptions {
        DistOptions {
            workers: 2,
            backend: DistBackend::InProcess,
            redundancy: 1,
            steal_timeout: Duration::from_secs(30),
            deadline: Duration::from_secs(600),
            poll: Duration::from_millis(2),
            validate: false,
        }
    }
}

/// Counters describing one distributed run. The steal-loop counters
/// (`steals`, `stragglers_requeued`, `duplicates_discarded`,
/// `conflicts`) come from the queue's [`QueueStats`] and carry the same
/// meaning on every transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistStats {
    /// Jobs dispatched (distinct ids).
    pub jobs: usize,
    /// Workers that served the run.
    pub workers: usize,
    /// Successful exclusive claims across the run (≥ `jobs`: requeues
    /// and redundancy add claims).
    pub steals: usize,
    /// Duplicate results checked and discarded (redundancy, straggler
    /// double-completion).
    pub duplicates_discarded: usize,
    /// Claims re-published after the straggler timeout.
    pub stragglers_requeued: usize,
    /// Diverging duplicates — always 0 in a healthy run (a nonzero count
    /// fails the run before results are absorbed).
    pub conflicts: usize,
}

impl DistStats {
    fn absorb_queue(&mut self, counters: QueueStats) {
        self.steals = counters.steals;
        self.duplicates_discarded = counters.duplicates_discarded;
        self.stragglers_requeued = counters.requeues;
        self.conflicts = counters.conflicts;
    }

    /// Publish these counters into the process-wide metrics registry
    /// under the `dist_*` series, verbatim.
    pub fn publish(&self) {
        let m = affidavit_obs::metrics();
        m.set_counter("dist_jobs", self.jobs as u64);
        m.set_counter("dist_workers", self.workers as u64);
        m.set_counter("dist_steals", self.steals as u64);
        m.set_counter(
            "dist_duplicates_discarded",
            self.duplicates_discarded as u64,
        );
        m.set_counter("dist_stragglers_requeued", self.stragglers_requeued as u64);
        m.set_counter("dist_conflicts", self.conflicts as u64);
    }
}

/// Run `jobs` to completion and return all results keyed by job id.
/// Jobs are taken by value: their (potentially snapshot-sized) payloads
/// are released as soon as they are handed to the queue, so coordinator
/// memory during the wait is bounded by the id/name manifest, not the
/// serialized corpus.
pub fn execute_jobs(
    jobs: Vec<Job>,
    opts: &DistOptions,
) -> Result<(BTreeMap<u64, JobResult>, DistStats), String> {
    let _span = affidavit_obs::span_with(
        "dist.execute",
        vec![("jobs".to_owned(), jobs.len().to_string())],
    );
    let workers = affidavit_core::resolve_parallelism(opts.workers);
    let mut stats = DistStats {
        jobs: jobs.len(),
        workers,
        ..DistStats::default()
    };
    if jobs.is_empty() {
        stats.publish();
        return Ok((BTreeMap::new(), stats));
    }
    let manifest: Vec<u64> = jobs.iter().map(|j| j.id).collect();
    match &opts.backend {
        DistBackend::InProcess => {
            let queue = InProcessQueue::new();
            submit_all(&queue, jobs, opts.redundancy)?;
            let results = std::thread::scope(|scope| -> Result<_, String> {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let queue = &queue;
                        let poll = opts.poll;
                        let id = format!("local-{w}");
                        scope.spawn(move || run_worker(queue, &id, poll))
                    })
                    .collect();
                let results = wait_for_results(&queue, &manifest, opts, |_| Ok(()));
                // Always release the workers, even on error, or the scope
                // would never join.
                queue.request_shutdown()?;
                for handle in handles {
                    handle
                        .join()
                        .map_err(|_| "worker thread panicked".to_owned())??;
                }
                results
            })?;
            // Late duplicates (redundancy stragglers completing during
            // shutdown) have all been compared once the threads joined.
            queue.check_health()?;
            stats.absorb_queue(queue.stats()?);
            stats.publish();
            Ok((results, stats))
        }
        DistBackend::ChildProcesses {
            broker_dir,
            worker_bin,
        } => {
            // A unique spool per run; an explicit --broker directory must
            // be fresh (job ids restart at 0 every run, so stale results
            // would be absorbed as this run's). On failure the spool is
            // left behind for post-mortem.
            static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let (root, owned) = match broker_dir {
                Some(dir) => (dir.clone(), false),
                None => {
                    // pid + counter alone can collide with a failed
                    // run's leftover spool after PID recycling; the
                    // nanosecond stamp makes the path unique.
                    let nanos = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos())
                        .unwrap_or(0);
                    let dir = std::env::temp_dir().join(format!(
                        "affidavit-dist-{}-{}-{nanos}",
                        std::process::id(),
                        RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    ));
                    (dir, true)
                }
            };
            let bin = resolve_worker_bin(worker_bin)?;
            let broker = FsBroker::open(&root)?;
            // Even an owned temp spool is checked: job ids restart at 0
            // every run, so absorbing any leftover would silently
            // corrupt this run's profile — better to refuse loudly.
            broker.ensure_fresh()?;
            let endpoint = WorkerEndpoint::Spool(root.clone());
            let results = run_fleet(&broker, &bin, &endpoint, workers, jobs, &manifest, opts)?;
            stats.absorb_queue(broker.stats()?);
            stats.publish();
            if owned {
                std::fs::remove_dir_all(&root).ok();
            }
            Ok((results, stats))
        }
        DistBackend::Tcp { listen, worker_bin } => {
            let bin = resolve_worker_bin(worker_bin)?;
            let broker = Broker::new(TcpBroker::bind(listen.as_deref().unwrap_or("127.0.0.1:0"))?);
            let endpoint = WorkerEndpoint::Tcp(broker.transport().local_addr().to_string());
            let results = run_fleet(&broker, &bin, &endpoint, workers, jobs, &manifest, opts)?;
            stats.absorb_queue(broker.stats()?);
            stats.publish();
            Ok((results, stats))
        }
    }
}

fn resolve_worker_bin(worker_bin: &Option<PathBuf>) -> Result<PathBuf, String> {
    match worker_bin {
        Some(path) => Ok(path.clone()),
        None => worker_binary(),
    }
}

/// Drive a fleet of real `affidavit-worker` child processes over any
/// transport: spawn, submit, wait with straggler recovery and liveness
/// checks, wind down. The transport seam keeps this — the whole
/// coordinator side of the protocol — identical for the spool directory
/// and the TCP listener.
fn run_fleet<T: Transport>(
    queue: &crate::transport::Broker<T>,
    worker_bin: &Path,
    endpoint: &WorkerEndpoint,
    workers: usize,
    jobs: Vec<Job>,
    manifest: &[u64],
    opts: &DistOptions,
) -> Result<BTreeMap<u64, JobResult>, String> {
    let mut children = spawn_workers(worker_bin, endpoint, workers, opts.poll)?;
    let run = |children: &mut Vec<WorkerHandle>| -> Result<BTreeMap<u64, JobResult>, String> {
        submit_all(queue, jobs, opts.redundancy)?;
        let mut last_recovery = Instant::now();
        wait_for_results(queue, manifest, opts, |queue| {
            // Straggler recovery + child liveness, once per timeout
            // window.
            if last_recovery.elapsed() >= opts.steal_timeout {
                last_recovery = Instant::now();
                let _span = affidavit_obs::span("dist.requeue");
                queue.transport().requeue_expired(opts.steal_timeout)?;
            }
            if children.iter_mut().all(|c| c.try_finished()) {
                return Err("all workers exited before the run completed".to_owned());
            }
            Ok(())
        })
    };
    let results = run(&mut children);
    // Wind down the fleet whether the run succeeded or not; the
    // WorkerHandle drop kills anything that ignores the request. The
    // run's own error stays the headline — a shutdown that fails
    // because the transport is already gone must not mask it.
    let shutdown = queue.request_shutdown();
    let results = results?;
    shutdown?;
    for child in &mut children {
        if !child.wait()? {
            return Err(format!("worker {} exited with failure", child.worker_id));
        }
    }
    // The fleet has drained: any straggler duplicate that completed
    // after the last fresh result has been compared by now — surface a
    // late-recorded divergence instead of absorbing quietly.
    queue.check_health()?;
    Ok(results)
}

/// Hand every job (and its `redundancy − 1` speculative copies) to the
/// queue, dropping each payload as soon as the last copy is submitted.
fn submit_all(queue: &dyn JobQueue, jobs: Vec<Job>, redundancy: usize) -> Result<(), String> {
    for job in jobs {
        for _ in 0..redundancy.max(1) {
            queue.submit(&job)?;
        }
    }
    Ok(())
}

fn wait_for_results<Q: JobQueue>(
    queue: &Q,
    manifest: &[u64],
    opts: &DistOptions,
    mut tick: impl FnMut(&Q) -> Result<(), String>,
) -> Result<BTreeMap<u64, JobResult>, String> {
    let deadline = Instant::now() + opts.deadline;
    let mut results: BTreeMap<u64, JobResult> = BTreeMap::new();
    loop {
        let mut fetched_new = false;
        for &id in manifest {
            if let std::collections::btree_map::Entry::Vacant(slot) = results.entry(id) {
                if let Some(result) = queue.fetch_result(id)? {
                    slot.insert(result);
                    fetched_new = true;
                }
            }
        }
        // Conflicts appear only around (duplicate) deliveries, so the
        // health scan — a full results-directory listing on the fs
        // transport — runs on result arrival, not on every poll nap;
        // the fleet teardown does one final check for late duplicates.
        if fetched_new {
            queue.check_health()?;
        }
        if manifest.iter().all(|id| results.contains_key(id)) {
            return Ok(results);
        }
        tick(queue)?;
        if Instant::now() >= deadline {
            return Err(format!(
                "distributed run exceeded its deadline with {}/{} results",
                results.len(),
                manifest.len()
            ));
        }
        std::thread::sleep(opts.poll);
    }
}

/// A worker's explanation, merged into the coordinator's pool.
#[derive(Debug)]
pub struct RemoteExplanation {
    /// The explanation, symbol-valid against the coordinator's pool.
    pub explanation: Explanation,
    /// States the worker's search polled.
    pub polled: usize,
    /// States the worker's search expanded.
    pub expansions: usize,
    /// Worker-side search wall time in milliseconds.
    pub millis: u64,
}

/// Merge one result into the instance it was computed from. `base_len`
/// must be the pool length at ship time ([`WireInstance::base_len`]).
pub fn absorb_result(
    instance: &mut ProblemInstance,
    base_len: usize,
    result: &JobResult,
    validate: bool,
) -> Result<RemoteExplanation, String> {
    let (new_strings, functions, core, deleted, inserted, polled, expansions, millis) =
        match &result.outcome {
            JobOutcome::Failed { reason } => return Err(reason.clone()),
            JobOutcome::Expanded { .. } => {
                return Err("expected an explanation result, got an expansion batch".to_owned())
            }
            JobOutcome::Explained {
                new_strings,
                functions,
                core,
                deleted,
                inserted,
                polled,
                expansions,
                millis,
            } => (
                new_strings,
                functions,
                core,
                deleted,
                inserted,
                polled,
                expansions,
                millis,
            ),
        };
    // The cross-process pool merge: the worker's suffix behaves exactly
    // like a ScratchPool overlay frozen at base_len.
    let remap = instance
        .pool
        .absorb_strs(base_len, new_strings.iter().map(String::as_str));
    let worker_pool_len = base_len + new_strings.len();
    let functions = functions
        .iter()
        .map(|wf| wf.to_attr(worker_pool_len).map(|f| f.remap(&remap)))
        .collect::<Result<Vec<_>, String>>()?;
    let (n_src, n_tgt) = (instance.source.len() as u32, instance.target.len() as u32);
    let src_id = |r: &u32| -> Result<affidavit_table::RecordId, String> {
        if *r < n_src {
            Ok(affidavit_table::RecordId(*r))
        } else {
            Err(format!("source row {r} out of range ({n_src} rows)"))
        }
    };
    let tgt_id = |r: &u32| -> Result<affidavit_table::RecordId, String> {
        if *r < n_tgt {
            Ok(affidavit_table::RecordId(*r))
        } else {
            Err(format!("target row {r} out of range ({n_tgt} rows)"))
        }
    };
    let explanation = Explanation::new(
        functions,
        deleted.iter().map(src_id).collect::<Result<_, _>>()?,
        inserted.iter().map(tgt_id).collect::<Result<_, _>>()?,
        core.iter()
            .map(|(s, t)| Ok((src_id(s)?, tgt_id(t)?)))
            .collect::<Result<_, String>>()?,
    );
    if validate {
        explanation.validate(instance)?;
    }
    Ok(RemoteExplanation {
        explanation,
        polled: *polled as usize,
        expansions: *expansions as usize,
        millis: *millis,
    })
}

/// Distribute one search: submit the instance as a job and absorb the
/// result. The queue must have at least one live worker (thread or
/// process). The returned explanation — and hence
/// `report::render_report` over it — is byte-identical to a local
/// [`Affidavit::explain`](affidavit_core::Affidavit::explain) run.
pub fn explain_via(
    queue: &dyn JobQueue,
    instance: &mut ProblemInstance,
    config: &AffidavitConfig,
    deadline: Duration,
) -> Result<RemoteExplanation, String> {
    let base_len = instance.pool.len();
    let job = Job {
        id: 0,
        name: "explain".to_owned(),
        payload: JobPayload::Explain {
            instance: WireInstance::from_instance(instance),
            config: config.clone(),
        },
    };
    queue.submit(&job)?;
    let until = Instant::now() + deadline;
    let result = loop {
        if let Some(result) = queue.fetch_result(job.id)? {
            break result;
        }
        queue.check_health()?;
        if Instant::now() >= until {
            return Err("explain_via exceeded its deadline".to_owned());
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    absorb_result(instance, base_len, &result, false)
}

/// Distributed [`profile_dirs`](affidavit_core::profiling::profile_dirs):
/// the same pairing, ingestion, schema repair and summary computation,
/// but with every table pair's search executed as a stealable job.
///
/// The coordinator stages pairs locally — in parallel across pairs, like
/// [`profile_dirs`](affidavit_core::profiling::profile_dirs) — so
/// ingestion failures carry the same messages as the local profiler;
/// ships staged instances to the workers (each serialized payload is
/// released once submitted); and absorbs results in job order. The
/// profile is byte-identical to
/// [`profile_dirs`](affidavit_core::profiling::profile_dirs)
/// at every worker count, except for the wall-time column — strip it with
/// [`SnapshotProfile::strip_timing`] before byte comparisons.
pub fn profile_dirs_distributed(
    source_dir: &Path,
    target_dir: &Path,
    popts: &ProfileOptions,
    dopts: &DistOptions,
) -> Result<(SnapshotProfile, DistStats), String> {
    use rayon::prelude::*;

    enum Staged {
        Ready(TableOutcome),
        Instance(Box<ProblemInstance>, WireInstance),
    }
    enum Slot {
        Ready(TableOutcome),
        Staged(Box<ProblemInstance>, usize),
    }
    let pairs = paired_csv_stems(source_dir, target_dir)?;
    let staged: Vec<Staged> = pairs
        .par_iter()
        .map(|pair| match (&pair.source, &pair.target) {
            (Some(src), Some(tgt)) => match stage_file_pair(src, tgt, popts) {
                Ok(instance) => {
                    let wire = WireInstance::from_instance(&instance);
                    Staged::Instance(Box::new(instance), wire)
                }
                Err(reason) => Staged::Ready(TableOutcome::Failed { reason }),
            },
            (Some(_), None) => Staged::Ready(TableOutcome::MissingInTarget),
            (None, Some(_)) => Staged::Ready(TableOutcome::MissingInSource),
            (None, None) => unreachable!("a paired stem exists in at least one snapshot"),
        })
        .collect();
    let mut slots: Vec<Slot> = Vec::with_capacity(pairs.len());
    let mut jobs: Vec<Job> = Vec::new();
    for (i, (pair, staged)) in pairs.iter().zip(staged).enumerate() {
        slots.push(match staged {
            Staged::Ready(outcome) => Slot::Ready(outcome),
            Staged::Instance(instance, wire) => {
                let base_len = wire.base_len();
                jobs.push(Job {
                    id: i as u64,
                    name: pair.name.clone(),
                    payload: JobPayload::Explain {
                        instance: wire,
                        config: popts.config.clone(),
                    },
                });
                Slot::Staged(instance, base_len)
            }
        });
    }

    let (results, stats) = execute_jobs(jobs, dopts)?;

    let mut tables = Vec::with_capacity(pairs.len());
    for (i, (pair, slot)) in pairs.iter().zip(slots).enumerate() {
        let outcome = match slot {
            Slot::Ready(outcome) => outcome,
            Slot::Staged(mut instance, base_len) => {
                let result = results
                    .get(&(i as u64))
                    .ok_or_else(|| format!("no result for job {i} ({})", pair.name))?;
                match absorb_result(&mut instance, base_len, result, dopts.validate) {
                    Ok(remote) => outcome_for(&remote.explanation, &instance, remote.millis),
                    Err(reason) => TableOutcome::Failed {
                        reason: format!("worker {}: {reason}", result.worker),
                    },
                }
            }
        };
        tables.push(TableProfile {
            name: pair.name.clone(),
            outcome,
        });
    }
    Ok((SnapshotProfile { tables }, stats))
}
