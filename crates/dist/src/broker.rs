//! The filesystem broker: a [`JobQueue`] shared between real processes.
//!
//! A broker is a spool directory with four elements:
//!
//! ```text
//! <root>/jobs/      job-<id>.<sub>.json        pending, stealable
//! <root>/claimed/   job-<id>.<sub>.<worker>.json   claimed, in flight
//! <root>/results/   result-<id>.json           completed
//! <root>/stop       (empty file)               shutdown request
//! ```
//!
//! *Stealing* is one atomic `rename` from `jobs/` into `claimed/`: the
//! filesystem guarantees exactly one winner per pending file, so any
//! number of `affidavit-worker` processes — spawned by the coordinator or
//! attached later by hand — can race for work without further locking.
//! The coordinator re-publishes claims that outlive the straggler timeout
//! (the claimed copy is left in place, marked `.requeued`), so a hung or
//! killed worker delays its jobs but cannot lose them; if the original
//! worker finishes after all, its result is a duplicate, which is
//! compared and discarded — wasted work, never nondeterminism. Diverging
//! duplicates (impossible unless the engine's determinism invariant is
//! broken) are recorded as `results/conflict-*` and surface as a
//! coordinator error through [`JobQueue::check_health`].
//!
//! All writes are write-to-temp-then-rename, so readers never observe a
//! partial file. The broker assumes `root` lives on one filesystem (a
//! local disk or a shared mount — rename must be atomic).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use crate::job::{decode_job, decode_result, encode_job, encode_result, Job, JobResult};
use crate::queue::{strip_nondeterminism, JobQueue, QueueStats};

/// Spool-directory [`JobQueue`] backend. Cheap to construct on both the
/// coordinator and worker sides; all state lives in the directory.
#[derive(Debug)]
pub struct FsBroker {
    root: PathBuf,
    /// Distinguishes multiple submissions of the same job id (duplicates,
    /// straggler retries) in pending file names.
    submissions: AtomicU64,
}

impl FsBroker {
    /// Open (creating if necessary) a broker rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsBroker, String> {
        let root = root.into();
        for sub in ["jobs", "claimed", "results"] {
            std::fs::create_dir_all(root.join(sub))
                .map_err(|e| format!("{}: {e}", root.join(sub).display()))?;
        }
        Ok(FsBroker {
            root,
            submissions: AtomicU64::new(0),
        })
    }

    /// The spool directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn jobs(&self) -> PathBuf {
        self.root.join("jobs")
    }

    fn claimed(&self) -> PathBuf {
        self.root.join("claimed")
    }

    fn results(&self) -> PathBuf {
        self.root.join("results")
    }

    fn result_path(&self, id: u64) -> PathBuf {
        self.results().join(format!("result-{id:08}.json"))
    }

    fn write_atomic(
        &self,
        dir: &Path,
        name: &str,
        tmp_tag: &str,
        text: &str,
    ) -> Result<(), String> {
        let tmp = dir.join(format!(".tmp-{tmp_tag}"));
        std::fs::write(&tmp, text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        let target = dir.join(name);
        std::fs::rename(&tmp, &target).map_err(|e| format!("{}: {e}", target.display()))
    }

    fn sorted_entries(dir: &Path) -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with('.') {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// How many claims have been requeued over this broker's lifetime
    /// (counted from the `.requeued` markers in the spool).
    pub fn requeued_count(&self) -> usize {
        Self::sorted_entries(&self.claimed())
            .map(|names| names.iter().filter(|n| n.ends_with(".requeued")).count())
            .unwrap_or(0)
    }

    /// Fail unless the spool is empty — no pending or claimed jobs, no
    /// results, no shutdown request. A coordinator must call this before
    /// reusing an explicit `--broker` directory: job ids restart at 0
    /// every run, so stale results from a previous run would otherwise be
    /// absorbed as this run's, and a leftover `stop` file would make
    /// freshly spawned workers exit immediately.
    pub fn ensure_fresh(&self) -> Result<(), String> {
        if self.root.join("stop").exists() {
            return Err(format!(
                "stale broker spool {}: a previous run's stop file is present \
                 (remove the spool or pass a fresh --broker directory)",
                self.root.display()
            ));
        }
        for sub in ["jobs", "claimed", "results"] {
            let dir = self.root.join(sub);
            if let Some(name) = Self::sorted_entries(&dir)?.first() {
                return Err(format!(
                    "stale broker spool {}: {sub}/{name} is left over from a previous \
                     run (remove the spool or pass a fresh --broker directory)",
                    self.root.display()
                ));
            }
        }
        Ok(())
    }

    /// Re-publish claims whose job id still has no result — the
    /// anti-straggler half of work-stealing. A claim must be older than
    /// `timeout × 2^(times this id was already requeued)` (capped), so a
    /// legitimately long-running job is retried with exponential backoff
    /// instead of accumulating a fresh duplicate every recovery tick.
    /// Returns how many jobs were requeued. Coordinator side.
    pub fn recover_stragglers(&self, timeout: Duration) -> Result<usize, String> {
        let now = SystemTime::now();
        let names = Self::sorted_entries(&self.claimed())?;
        let requeues_of = |id: u64| {
            names
                .iter()
                .filter(|n| n.ends_with(".requeued") && parse_job_id(n) == Some(id))
                .count() as u32
        };
        let mut requeued = 0;
        for name in &names {
            if !name.ends_with(".json") {
                continue; // already marked .requeued
            }
            let Some(id) = parse_job_id(name) else {
                continue;
            };
            if self.result_path(id).exists() {
                continue;
            }
            let path = self.claimed().join(name);
            let required = timeout.saturating_mul(1 << requeues_of(id).min(6));
            let stale = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok())
                .is_some_and(|age| age >= required);
            if !stale {
                continue;
            }
            // Copy the claim back into jobs/ under a fresh submission
            // number, then mark the claim so it is not requeued again.
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // raced with the worker finishing; harmless
            };
            let job = decode_job(&text)?;
            self.submit(&job)?;
            let marked = self.claimed().join(format!("{name}.requeued"));
            std::fs::rename(&path, &marked).ok();
            requeued += 1;
        }
        Ok(requeued)
    }
}

/// `job-<id>.<sub>[...]` → `<id>`.
fn parse_job_id(name: &str) -> Option<u64> {
    name.strip_prefix("job-")?.split('.').next()?.parse().ok()
}

impl JobQueue for FsBroker {
    fn submit(&self, job: &Job) -> Result<(), String> {
        let sub = self.submissions.fetch_add(1, Ordering::Relaxed);
        let name = format!("job-{:08}.{sub:04}.json", job.id);
        self.write_atomic(
            &self.jobs(),
            &name,
            &format!("submit-{}-{sub}", job.id),
            &encode_job(job),
        )
    }

    fn steal(&self, worker: &str) -> Result<Option<Job>, String> {
        // Shutdown means "stop taking new work", not "drain": pending
        // jobs at this point are either abandoned by an aborting
        // coordinator or redundant duplicates — executing them buys
        // nothing.
        if self.shutdown_requested()? {
            return Ok(None);
        }
        for name in Self::sorted_entries(&self.jobs())? {
            let pending = self.jobs().join(&name);
            let stem = name.strip_suffix(".json").unwrap_or(&name);
            let claim = self.claimed().join(format!("{stem}.{worker}.json"));
            // Atomic claim: exactly one worker wins this rename.
            if std::fs::rename(&pending, &claim).is_err() {
                continue; // someone else won; try the next file
            }
            let text =
                std::fs::read_to_string(&claim).map_err(|e| format!("{}: {e}", claim.display()))?;
            return decode_job(&text).map(Some);
        }
        Ok(None)
    }

    fn complete(&self, worker: &str, result: &JobResult) -> Result<(), String> {
        let final_path = self.result_path(result.id);
        if final_path.exists() {
            // Duplicate completion (the job was stolen twice or requeued):
            // verify the determinism invariant, then discard.
            let existing = std::fs::read_to_string(&final_path)
                .map_err(|e| format!("{}: {e}", final_path.display()))?;
            let existing = decode_result(&existing)?;
            if strip_nondeterminism(&existing) == strip_nondeterminism(result) {
                self.write_atomic(
                    &self.results(),
                    &format!("dup-{:08}.{worker}.marker", result.id),
                    &format!("dup-{}-{worker}", result.id),
                    "",
                )?;
            } else {
                self.write_atomic(
                    &self.results(),
                    &format!("conflict-{:08}.{worker}.json", result.id),
                    &format!("conflict-{}-{worker}", result.id),
                    &encode_result(result),
                )?;
            }
            return Ok(());
        }
        self.write_atomic(
            &self.results(),
            &format!("result-{:08}.json", result.id),
            &format!("result-{}-{worker}", result.id),
            &encode_result(result),
        )
    }

    fn fetch_result(&self, id: u64) -> Result<Option<JobResult>, String> {
        let path = self.result_path(id);
        match std::fs::read_to_string(&path) {
            Ok(text) => decode_result(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    fn request_shutdown(&self) -> Result<(), String> {
        let stop = self.root.join("stop");
        std::fs::write(&stop, b"").map_err(|e| format!("{}: {e}", stop.display()))
    }

    fn shutdown_requested(&self) -> Result<bool, String> {
        Ok(self.root.join("stop").exists())
    }

    fn check_health(&self) -> Result<(), String> {
        for name in Self::sorted_entries(&self.results())? {
            if name.starts_with("conflict-") {
                return Err(format!(
                    "diverging duplicate result recorded at {}",
                    self.results().join(name).display()
                ));
            }
        }
        Ok(())
    }

    fn stats(&self) -> Result<QueueStats, String> {
        let duplicates_discarded = Self::sorted_entries(&self.results())?
            .iter()
            .filter(|n| n.starts_with("dup-"))
            .count();
        Ok(QueueStats {
            duplicates_discarded,
        })
    }
}

/// Locate the `affidavit-worker` executable: the `AFFIDAVIT_WORKER_BIN`
/// environment variable if set, otherwise a sibling of the current
/// executable (all workspace binaries land in the same target directory).
pub fn worker_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("AFFIDAVIT_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "AFFIDAVIT_WORKER_BIN={} does not exist",
            path.display()
        ));
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = exe
        .parent()
        .ok_or("current executable has no parent directory")?
        .join(format!("affidavit-worker{}", std::env::consts::EXE_SUFFIX));
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "affidavit-worker not found next to {} (build it with \
             `cargo build -p affidavit-dist` or set AFFIDAVIT_WORKER_BIN)",
            exe.display()
        ))
    }
}

/// A spawned worker child process, killed on drop if still running.
#[derive(Debug)]
pub struct WorkerHandle {
    child: Child,
    /// The worker's id (`proc-<n>`), as it will appear in results.
    pub worker_id: String,
}

impl WorkerHandle {
    /// Whether the process has exited, without blocking.
    pub fn try_finished(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    /// Wait for the process to exit and report success.
    pub fn wait(&mut self) -> Result<bool, String> {
        self.child
            .wait()
            .map(|status| status.success())
            .map_err(|e| e.to_string())
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Spawn `n` real `affidavit-worker` child processes against a broker.
/// Their stderr is inherited (worker diagnostics stay visible); stdout is
/// discarded.
pub fn spawn_workers(
    worker_bin: &Path,
    broker_root: &Path,
    n: usize,
    poll: Duration,
) -> Result<Vec<WorkerHandle>, String> {
    (0..n)
        .map(|i| {
            let worker_id = format!("proc-{i}");
            Command::new(worker_bin)
                .arg("--broker")
                .arg(broker_root)
                .arg("--worker-id")
                .arg(&worker_id)
                .arg("--poll-ms")
                .arg(poll.as_millis().max(1).to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map(|child| WorkerHandle { child, worker_id })
                .map_err(|e| format!("spawning {}: {e}", worker_bin.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobOutcome, JobPayload};
    use crate::wire::WireInstance;

    fn dummy_job(id: u64) -> Job {
        Job {
            id,
            name: format!("job-{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into()],
                    source: vec![vec![0]],
                    target: vec![vec![0]],
                },
                config: affidavit_core::AffidavitConfig::paper_id(),
            },
        }
    }

    fn dummy_result(id: u64, worker: &str, reason: &str) -> JobResult {
        JobResult {
            id,
            name: format!("job-{id}"),
            worker: worker.to_owned(),
            outcome: JobOutcome::Failed {
                reason: reason.to_owned(),
            },
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("affidavit-broker-test-{tag}"));
        std::fs::remove_dir_all(&root).ok();
        root
    }

    #[test]
    fn steal_is_exclusive_and_fifo_by_id() {
        let root = temp_root("steal");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(1)).unwrap();
        broker.submit(&dummy_job(0)).unwrap();
        // Sorted file names put job 0 first even though it was submitted
        // second.
        assert_eq!(broker.steal("a").unwrap().unwrap().id, 0);
        assert_eq!(broker.steal("b").unwrap().unwrap().id, 1);
        assert!(broker.steal("a").unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn results_roundtrip_and_duplicates_are_checked() {
        let root = temp_root("results");
        let broker = FsBroker::open(&root).unwrap();
        broker.complete("a", &dummy_result(4, "a", "same")).unwrap();
        broker.complete("b", &dummy_result(4, "b", "same")).unwrap();
        assert_eq!(broker.fetch_result(4).unwrap().unwrap().worker, "a");
        assert_eq!(broker.stats().unwrap().duplicates_discarded, 1);
        assert!(broker.check_health().is_ok());
        broker
            .complete("c", &dummy_result(4, "c", "DIFFERENT"))
            .unwrap();
        assert!(broker.check_health().unwrap_err().contains("diverging"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stragglers_are_requeued_once() {
        let root = temp_root("stragglers");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(9)).unwrap();
        // A worker claims the job and then hangs (we simply never
        // complete it).
        let job = broker.steal("slow").unwrap().unwrap();
        assert_eq!(job.id, 9);
        assert!(broker.steal("fast").unwrap().is_none());
        // With a zero timeout the claim is immediately stale.
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 1);
        // The re-published copy is stealable by another worker; the old
        // claim is marked and not requeued again.
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 0);
        let again = broker.steal("fast").unwrap().unwrap();
        assert_eq!(again.id, 9);
        // Once a result lands, recovery leaves everything alone.
        broker
            .complete("fast", &dummy_result(9, "fast", "done"))
            .unwrap();
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn ensure_fresh_rejects_stale_spools() {
        let root = temp_root("fresh");
        let broker = FsBroker::open(&root).unwrap();
        assert!(broker.ensure_fresh().is_ok());
        broker.submit(&dummy_job(0)).unwrap();
        assert!(broker.ensure_fresh().unwrap_err().contains("stale"));
        // A completed previous run (results + stop) is just as stale.
        let _ = broker.steal("w").unwrap().unwrap();
        broker.complete("w", &dummy_result(0, "w", "done")).unwrap();
        broker.request_shutdown().unwrap();
        assert!(broker.ensure_fresh().unwrap_err().contains("stop"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shutdown_stops_handing_out_pending_jobs() {
        let root = temp_root("abandon");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(0)).unwrap();
        broker.request_shutdown().unwrap();
        assert!(broker.steal("w").unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shutdown_crosses_broker_instances() {
        let root = temp_root("shutdown");
        let coordinator = FsBroker::open(&root).unwrap();
        let worker_side = FsBroker::open(&root).unwrap();
        assert!(!worker_side.shutdown_requested().unwrap());
        coordinator.request_shutdown().unwrap();
        assert!(worker_side.shutdown_requested().unwrap());
        std::fs::remove_dir_all(&root).ok();
    }
}
