//! The filesystem transport: a spool directory shared between processes.
//!
//! [`FsTransport`] implements [`Transport`] over a directory with four
//! elements:
//!
//! ```text
//! <root>/jobs/      job-<id>.<sub>.json        published, claimable
//! <root>/claimed/   job-<id>.<sub>.<worker>.json   leased, in flight
//! <root>/results/   result-<id>.json           delivered
//! <root>/stop       (empty file)               shutdown request
//! ```
//!
//! *Claiming* is one atomic `rename` from `jobs/` into `claimed/`: the
//! filesystem guarantees exactly one winner per published file, so any
//! number of `affidavit-worker` processes — spawned by the coordinator or
//! attached later by hand — can race for work without further locking.
//! The claim file doubles as the lease: a claim older than the backoff
//! window whose id has no result is re-published (the claimed copy is
//! left in place, marked `.requeued`), so a hung or killed worker delays
//! its jobs but cannot lose them. Everything above the file operations —
//! envelope encoding, duplicate compare-and-discard, conflict semantics —
//! lives in the transport-agnostic [`Broker`] protocol layer; [`FsBroker`]
//! is simply `Broker<FsTransport>`.
//!
//! All writes are write-to-temp-then-rename, so readers never observe a
//! partial file. The transport assumes `root` lives on one filesystem (a
//! local disk or a shared mount — rename must be atomic).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use crate::queue::QueueStats;
use crate::transport::{requeue_backoff, Broker, Claimed, Delivered, Transport};

/// Spool-directory [`Transport`]. Cheap to construct on both the
/// coordinator and worker sides; all state lives in the directory.
#[derive(Debug)]
pub struct FsTransport {
    root: PathBuf,
    /// Distinguishes multiple publications of the same job id
    /// (duplicates, straggler retries) in pending file names.
    submissions: AtomicU64,
}

/// The filesystem broker: the work-stealing protocol over a spool
/// directory — a [`JobQueue`](crate::queue::JobQueue) shared between
/// real processes.
pub type FsBroker = Broker<FsTransport>;

impl Broker<FsTransport> {
    /// Open (creating if necessary) a broker rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsBroker, String> {
        FsTransport::open(root).map(Broker::new)
    }

    /// The spool directory.
    pub fn root(&self) -> &Path {
        self.transport().root()
    }

    /// Fail unless the spool is fresh — see [`FsTransport::ensure_fresh`].
    pub fn ensure_fresh(&self) -> Result<(), String> {
        self.transport().ensure_fresh()
    }

    /// Re-publish straggling claims — see
    /// [`Transport::requeue_expired`].
    pub fn recover_stragglers(&self, timeout: Duration) -> Result<usize, String> {
        self.transport().requeue_expired(timeout)
    }

    /// How many claims have been requeued over this broker's lifetime
    /// (counted from the `.requeued` markers in the spool).
    pub fn requeued_count(&self) -> usize {
        self.transport().counters().map(|c| c.requeues).unwrap_or(0)
    }
}

impl FsTransport {
    /// Open (creating if necessary) a transport rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsTransport, String> {
        let root = root.into();
        for sub in ["jobs", "claimed", "results"] {
            std::fs::create_dir_all(root.join(sub))
                .map_err(|e| format!("{}: {e}", root.join(sub).display()))?;
        }
        Ok(FsTransport {
            root,
            submissions: AtomicU64::new(0),
        })
    }

    /// The spool directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn jobs(&self) -> PathBuf {
        self.root.join("jobs")
    }

    fn claimed(&self) -> PathBuf {
        self.root.join("claimed")
    }

    fn results(&self) -> PathBuf {
        self.root.join("results")
    }

    fn result_path(&self, id: u64) -> PathBuf {
        self.results().join(format!("result-{id:08}.json"))
    }

    /// The tombstone [`Transport::forget`] leaves for a retired id.
    /// Checked by `claim`, `deliver` and `requeue_expired`, so a job that
    /// was in flight — or republished — when its id was forgotten is
    /// dropped instead of computed or stored.
    fn retired_marker(&self, id: u64) -> PathBuf {
        self.results().join(format!("retired-{id:08}.marker"))
    }

    fn write_atomic(
        &self,
        dir: &Path,
        name: &str,
        tmp_tag: &str,
        text: &str,
    ) -> Result<(), String> {
        let tmp = dir.join(format!(".tmp-{tmp_tag}"));
        std::fs::write(&tmp, text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        let target = dir.join(name);
        std::fs::rename(&tmp, &target).map_err(|e| format!("{}: {e}", target.display()))
    }

    fn sorted_entries(dir: &Path) -> Result<Vec<String>, String> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with('.') {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Fail unless the spool is empty — no pending or claimed jobs, no
    /// results, no shutdown request. A coordinator must call this before
    /// reusing an explicit `--broker` directory: job ids restart at 0
    /// every run, so stale results from a previous run would otherwise be
    /// absorbed as this run's, and a leftover `stop` file would make
    /// freshly spawned workers exit immediately. Leftover `conflict-*`
    /// files — a previous run's diverging duplicates — are called out
    /// explicitly, so the operator sees the spool holds evidence of a
    /// broken determinism invariant, not just routine leftovers.
    pub fn ensure_fresh(&self) -> Result<(), String> {
        // Diagnose conflicts first: they are the one kind of leftover
        // that should be inspected rather than casually deleted.
        let conflicts: Vec<String> = Self::sorted_entries(&self.results())
            .unwrap_or_default()
            .into_iter()
            .filter(|n| n.starts_with("conflict-"))
            .collect();
        if !conflicts.is_empty() {
            return Err(format!(
                "stale broker spool {}: {} diverging-duplicate conflict file(s) from a \
                 previous run ({}) — a run on this spool observed two workers return \
                 different bytes for the same job, which breaks the determinism \
                 invariant; inspect results/conflict-* before removing the spool",
                self.root.display(),
                conflicts.len(),
                conflicts.join(", ")
            ));
        }
        if self.root.join("stop").exists() {
            return Err(format!(
                "stale broker spool {}: a previous run's stop file is present \
                 (remove the spool or pass a fresh --broker directory)",
                self.root.display()
            ));
        }
        for sub in ["jobs", "claimed", "results"] {
            let dir = self.root.join(sub);
            if let Some(name) = Self::sorted_entries(&dir)?.first() {
                return Err(format!(
                    "stale broker spool {}: {sub}/{name} is left over from a previous \
                     run (remove the spool or pass a fresh --broker directory)",
                    self.root.display()
                ));
            }
        }
        Ok(())
    }
}

/// `job-<id>.<sub>[...]` → `<id>`.
fn parse_job_id(name: &str) -> Option<u64> {
    name.strip_prefix("job-")?.split('.').next()?.parse().ok()
}

impl Transport for FsTransport {
    fn publish(&self, id: u64, envelope: &str) -> Result<(), String> {
        let sub = self.submissions.fetch_add(1, Ordering::Relaxed);
        let name = format!("job-{id:08}.{sub:04}.json");
        self.write_atomic(&self.jobs(), &name, &format!("submit-{id}-{sub}"), envelope)
    }

    fn claim(&self, worker: &str) -> Result<Option<Claimed>, String> {
        // Shutdown means "stop taking new work", not "drain": pending
        // jobs at this point are either abandoned by an aborting
        // coordinator or redundant duplicates — executing them buys
        // nothing.
        if self.stopped()? {
            return Ok(None);
        }
        for name in Self::sorted_entries(&self.jobs())? {
            let Some(id) = parse_job_id(&name) else {
                continue;
            };
            let pending = self.jobs().join(&name);
            if self.retired_marker(id).exists() {
                // Withdrawn work: drop the publication instead of
                // handing it out.
                std::fs::remove_file(&pending).ok();
                continue;
            }
            let stem = name.strip_suffix(".json").unwrap_or(&name);
            let claim = self.claimed().join(format!("{stem}.{worker}.json"));
            // Atomic claim: exactly one worker wins this rename.
            if std::fs::rename(&pending, &claim).is_err() {
                continue; // someone else won; try the next file
            }
            // The claim file's mtime is the lease clock, but rename
            // preserves the *publish*-time mtime — touch it so the lease
            // starts now, not when the job entered the queue (otherwise
            // any job claimed later than the steal timeout after
            // submission would be requeued immediately). Best-effort: a
            // failed touch degrades to an early requeue, never a loss.
            if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&claim) {
                let _ = file.set_modified(SystemTime::now());
            }
            let envelope =
                std::fs::read_to_string(&claim).map_err(|e| format!("{}: {e}", claim.display()))?;
            return Ok(Some(Claimed { id, envelope }));
        }
        Ok(None)
    }

    fn heartbeat(&self, worker: &str, id: u64) -> Result<(), String> {
        // The claim file's mtime is the lease clock (see `claim`), so
        // renewing the lease is touching the file. Best-effort, like the
        // claim-time touch: a failed (or raced-away) touch degrades to
        // an early requeue whose duplicate is discarded, never a loss.
        let prefix = format!("job-{id:08}.");
        let suffix = format!(".{worker}.json");
        for name in Self::sorted_entries(&self.claimed())? {
            if name.starts_with(&prefix) && name.ends_with(&suffix) {
                let path = self.claimed().join(&name);
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
                    let _ = file.set_modified(SystemTime::now());
                }
            }
        }
        Ok(())
    }

    fn deliver(&self, worker: &str, id: u64, envelope: &str) -> Result<Delivered, String> {
        if self.retired_marker(id).exists() {
            // A late delivery for withdrawn work: accept-and-drop, so
            // the worker moves on and the spool stores nothing.
            return Ok(Delivered::Accepted);
        }
        let final_path = self.result_path(id);
        let read_existing = || {
            std::fs::read_to_string(&final_path)
                .map_err(|e| format!("{}: {e}", final_path.display()))
        };
        if final_path.exists() {
            return Ok(Delivered::Duplicate {
                existing: read_existing()?,
            });
        }
        // First delivery wins *atomically*: hard_link fails with
        // AlreadyExists if a result landed between the check above and
        // now (two workers completing the same requeued job on a shared
        // mount), so a racing duplicate can never silently overwrite the
        // stored bytes and dodge the comparison. Filesystems without
        // hard links (SMB, FAT) fall back to rename — publish-time
        // semantics of the original broker, atomic-visibility preserved,
        // only the vanishingly narrow first-wins race reopened.
        let tmp = self.results().join(format!(".tmp-result-{id}-{worker}"));
        std::fs::write(&tmp, envelope).map_err(|e| format!("{}: {e}", tmp.display()))?;
        match std::fs::hard_link(&tmp, &final_path) {
            Ok(()) => {
                std::fs::remove_file(&tmp).ok();
                Ok(Delivered::Accepted)
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                std::fs::remove_file(&tmp).ok();
                Ok(Delivered::Duplicate {
                    existing: read_existing()?,
                })
            }
            Err(_) if !final_path.exists() => std::fs::rename(&tmp, &final_path)
                .map(|()| Delivered::Accepted)
                .map_err(|e| format!("{}: {e}", final_path.display())),
            Err(_) => {
                std::fs::remove_file(&tmp).ok();
                Ok(Delivered::Duplicate {
                    existing: read_existing()?,
                })
            }
        }
    }

    fn discard_duplicate(&self, worker: &str, id: u64) -> Result<(), String> {
        self.write_atomic(
            &self.results(),
            &format!("dup-{id:08}.{worker}.marker"),
            &format!("dup-{id}-{worker}"),
            "",
        )
    }

    fn record_conflict(&self, worker: &str, id: u64, envelope: &str) -> Result<(), String> {
        self.write_atomic(
            &self.results(),
            &format!("conflict-{id:08}.{worker}.json"),
            &format!("conflict-{id}-{worker}"),
            envelope,
        )
    }

    fn fetch(&self, id: u64) -> Result<Option<String>, String> {
        let path = self.result_path(id);
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    fn forget(&self, id: u64) -> Result<(), String> {
        // Tombstone first: once the marker exists, claim/deliver/requeue
        // all drop the id, which closes the race against a concurrent
        // republish or late delivery landing between our deletions.
        self.write_atomic(
            &self.results(),
            &format!("retired-{id:08}.marker"),
            &format!("retired-{id}"),
            "",
        )?;
        let prefix = format!("job-{id:08}.");
        for name in Self::sorted_entries(&self.jobs())? {
            if name.starts_with(&prefix) {
                std::fs::remove_file(self.jobs().join(&name)).ok();
            }
        }
        std::fs::remove_file(self.result_path(id)).ok();
        // Claim files stay — `counters` derives the steals count from
        // them — but their payloads (a full job envelope each) are
        // truncated so a retired id holds no bytes in the spool.
        for name in Self::sorted_entries(&self.claimed())? {
            if name.starts_with(&prefix) {
                let _ = std::fs::write(self.claimed().join(&name), "");
            }
        }
        Ok(())
    }

    fn requeue_expired(&self, base_timeout: Duration) -> Result<usize, String> {
        let now = SystemTime::now();
        let names = Self::sorted_entries(&self.claimed())?;
        let requeues_of = |id: u64| {
            names
                .iter()
                .filter(|n| n.ends_with(".requeued") && parse_job_id(n) == Some(id))
                .count() as u32
        };
        let mut requeued = 0;
        for name in &names {
            if !name.ends_with(".json") {
                continue; // already marked .requeued
            }
            let Some(id) = parse_job_id(name) else {
                continue;
            };
            if self.result_path(id).exists() || self.retired_marker(id).exists() {
                continue;
            }
            let path = self.claimed().join(name);
            let required = requeue_backoff(base_timeout, requeues_of(id));
            let stale = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok())
                .is_some_and(|age| age >= required);
            if !stale {
                continue;
            }
            // Copy the claim back into jobs/ under a fresh submission
            // number, then mark the claim so it is not requeued again.
            let Ok(envelope) = std::fs::read_to_string(&path) else {
                continue; // raced with the worker finishing; harmless
            };
            self.publish(id, &envelope)?;
            let marked = self.claimed().join(format!("{name}.requeued"));
            std::fs::rename(&path, &marked).ok();
            requeued += 1;
        }
        Ok(requeued)
    }

    fn stop(&self) -> Result<(), String> {
        let stop = self.root.join("stop");
        std::fs::write(&stop, b"").map_err(|e| format!("{}: {e}", stop.display()))
    }

    fn stopped(&self) -> Result<bool, String> {
        Ok(self.root.join("stop").exists())
    }

    fn conflicts(&self) -> Result<Vec<String>, String> {
        Ok(Self::sorted_entries(&self.results())?
            .into_iter()
            .filter(|n| n.starts_with("conflict-"))
            .map(|name| {
                format!(
                    "diverging duplicate result recorded at {}",
                    self.results().join(name).display()
                )
            })
            .collect())
    }

    fn counters(&self) -> Result<QueueStats, String> {
        let claimed = Self::sorted_entries(&self.claimed())?;
        let results = Self::sorted_entries(&self.results())?;
        Ok(QueueStats {
            // Every successful claim leaves exactly one file in claimed/
            // (requeue marking renames it in place).
            steals: claimed.len(),
            requeues: claimed.iter().filter(|n| n.ends_with(".requeued")).count(),
            duplicates_discarded: results.iter().filter(|n| n.starts_with("dup-")).count(),
            conflicts: results
                .iter()
                .filter(|n| n.starts_with("conflict-"))
                .count(),
        })
    }
}

/// Locate the `affidavit-worker` executable: the `AFFIDAVIT_WORKER_BIN`
/// environment variable if set, otherwise a sibling of the current
/// executable (all workspace binaries land in the same target directory).
pub fn worker_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("AFFIDAVIT_WORKER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "AFFIDAVIT_WORKER_BIN={} does not exist",
            path.display()
        ));
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = exe
        .parent()
        .ok_or("current executable has no parent directory")?
        .join(format!("affidavit-worker{}", std::env::consts::EXE_SUFFIX));
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "affidavit-worker not found next to {} (build it with \
             `cargo build -p affidavit-dist` or set AFFIDAVIT_WORKER_BIN)",
            exe.display()
        ))
    }
}

/// Where a spawned `affidavit-worker` should steal from: a spool
/// directory (`--broker`) or a coordinator's TCP listener (`--connect`).
#[derive(Debug, Clone)]
pub enum WorkerEndpoint {
    /// A shared spool directory ([`FsBroker`]).
    Spool(PathBuf),
    /// A coordinator listener address, `HOST:PORT`
    /// ([`TcpBroker`](crate::tcp::TcpBroker)).
    Tcp(String),
}

/// A spawned worker child process, killed on drop if still running.
#[derive(Debug)]
pub struct WorkerHandle {
    child: Child,
    /// The worker's id (`proc-<n>`), as it will appear in results.
    pub worker_id: String,
}

impl WorkerHandle {
    /// Whether the process has exited, without blocking.
    pub fn try_finished(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    /// Wait for the process to exit and report success.
    pub fn wait(&mut self) -> Result<bool, String> {
        self.child
            .wait()
            .map(|status| status.success())
            .map_err(|e| e.to_string())
    }

    /// Kill the process immediately (fault injection in tests; the
    /// coordinator's protocol must treat this exactly like a straggler).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Spawn `n` real `affidavit-worker` child processes against a broker
/// endpoint. Their stderr is inherited (worker diagnostics stay
/// visible); stdout is discarded.
pub fn spawn_workers(
    worker_bin: &Path,
    endpoint: &WorkerEndpoint,
    n: usize,
    poll: Duration,
) -> Result<Vec<WorkerHandle>, String> {
    (0..n)
        .map(|i| {
            let worker_id = format!("proc-{i}");
            let mut command = Command::new(worker_bin);
            match endpoint {
                WorkerEndpoint::Spool(dir) => command.arg("--broker").arg(dir),
                WorkerEndpoint::Tcp(addr) => command.arg("--connect").arg(addr),
            };
            command
                .arg("--worker-id")
                .arg(&worker_id)
                .arg("--poll-ms")
                .arg(poll.as_millis().max(1).to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map(|child| WorkerHandle { child, worker_id })
                .map_err(|e| format!("spawning {}: {e}", worker_bin.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobOutcome, JobPayload, JobResult};
    use crate::queue::JobQueue;
    use crate::wire::WireInstance;

    fn dummy_job(id: u64) -> Job {
        Job {
            id,
            name: format!("job-{id}"),
            payload: JobPayload::Explain {
                instance: WireInstance {
                    schema: vec!["a".into()],
                    pool: vec!["x".into()],
                    source: vec![vec![0]],
                    target: vec![vec![0]],
                },
                config: affidavit_core::AffidavitConfig::paper_id(),
            },
        }
    }

    fn dummy_result(id: u64, worker: &str, reason: &str) -> JobResult {
        JobResult {
            id,
            name: format!("job-{id}"),
            worker: worker.to_owned(),
            outcome: JobOutcome::Failed {
                reason: reason.to_owned(),
            },
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("affidavit-broker-test-{tag}"));
        std::fs::remove_dir_all(&root).ok();
        root
    }

    #[test]
    fn steal_is_exclusive_and_fifo_by_id() {
        let root = temp_root("steal");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(1)).unwrap();
        broker.submit(&dummy_job(0)).unwrap();
        // Sorted file names put job 0 first even though it was submitted
        // second.
        assert_eq!(broker.steal("a").unwrap().unwrap().id, 0);
        assert_eq!(broker.steal("b").unwrap().unwrap().id, 1);
        assert!(broker.steal("a").unwrap().is_none());
        assert_eq!(broker.stats().unwrap().steals, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn results_roundtrip_and_duplicates_are_checked() {
        let root = temp_root("results");
        let broker = FsBroker::open(&root).unwrap();
        broker.complete("a", &dummy_result(4, "a", "same")).unwrap();
        broker.complete("b", &dummy_result(4, "b", "same")).unwrap();
        assert_eq!(broker.fetch_result(4).unwrap().unwrap().worker, "a");
        assert_eq!(broker.stats().unwrap().duplicates_discarded, 1);
        assert!(broker.check_health().is_ok());
        broker
            .complete("c", &dummy_result(4, "c", "DIFFERENT"))
            .unwrap();
        assert!(broker.check_health().unwrap_err().contains("diverging"));
        assert_eq!(broker.stats().unwrap().conflicts, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stragglers_are_requeued_once() {
        let root = temp_root("stragglers");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(9)).unwrap();
        // A worker claims the job and then hangs (we simply never
        // complete it).
        let job = broker.steal("slow").unwrap().unwrap();
        assert_eq!(job.id, 9);
        assert!(broker.steal("fast").unwrap().is_none());
        // With a zero timeout the claim is immediately stale.
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 1);
        // The re-published copy is stealable by another worker; the old
        // claim is marked and not requeued again.
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 0);
        let again = broker.steal("fast").unwrap().unwrap();
        assert_eq!(again.id, 9);
        assert_eq!(broker.requeued_count(), 1);
        assert_eq!(broker.stats().unwrap().requeues, 1);
        // Once a result lands, recovery leaves everything alone.
        broker
            .complete("fast", &dummy_result(9, "fast", "done"))
            .unwrap();
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn forget_cleans_the_spool_and_drops_late_deliveries() {
        let root = temp_root("forget");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(2)).unwrap();
        broker.submit(&dummy_job(3)).unwrap();
        let _ = broker.steal("w").unwrap().unwrap(); // claims job 2
        broker.complete("w", &dummy_result(2, "w", "done")).unwrap();
        assert!(broker.fetch_result(2).unwrap().is_some());
        broker.forget(2).unwrap();
        // The result file is gone and the claim file is an empty stub —
        // but the steal counter it backs survives.
        assert!(broker.fetch_result(2).unwrap().is_none());
        assert_eq!(broker.stats().unwrap().steals, 1);
        // A straggler delivering the forgotten job is accept-and-dropped.
        broker.complete("x", &dummy_result(2, "x", "late")).unwrap();
        assert!(broker.fetch_result(2).unwrap().is_none());
        assert!(broker.check_health().is_ok());
        // Forgetting a pending (unclaimed) job withdraws it entirely.
        broker.forget(3).unwrap();
        assert!(broker.steal("w").unwrap().is_none());
        // And a requeue pass never republishes a retired claim.
        assert_eq!(broker.recover_stragglers(Duration::ZERO).unwrap(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn heartbeat_renews_the_claim_file_lease() {
        let root = temp_root("heartbeat");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(5)).unwrap();
        let _ = broker.steal("w").unwrap().unwrap();
        // Backdate the claim file far past the timeout — a straggler by
        // the lease clock — then heartbeat: the mtime touch renews the
        // lease, so the requeue pass leaves the job alone.
        let claimed = root.join("claimed");
        let backdate = || {
            for entry in std::fs::read_dir(&claimed).unwrap() {
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(entry.unwrap().path())
                    .unwrap();
                file.set_modified(SystemTime::now() - Duration::from_secs(60))
                    .unwrap();
            }
        };
        backdate();
        broker.transport().heartbeat("w", 5).unwrap();
        let timeout = Duration::from_secs(30);
        assert_eq!(broker.recover_stragglers(timeout).unwrap(), 0);
        // The same backdated claim without a heartbeat is a straggler;
        // another worker's heartbeat must not renew it either.
        backdate();
        broker.transport().heartbeat("other", 5).unwrap();
        assert_eq!(broker.recover_stragglers(timeout).unwrap(), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lease_clock_starts_at_claim_not_publish() {
        let root = temp_root("lease-clock");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(5)).unwrap();
        // The job sits in the queue longer than the steal timeout before
        // anyone claims it...
        std::thread::sleep(Duration::from_millis(60));
        let _ = broker.steal("w").unwrap().unwrap();
        // ...and must NOT be treated as a straggler the moment it is
        // claimed: the lease began at claim, not at publish.
        assert_eq!(
            broker
                .recover_stragglers(Duration::from_millis(40))
                .unwrap(),
            0,
            "a freshly claimed job is not a straggler, however long it queued"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn ensure_fresh_rejects_stale_spools() {
        let root = temp_root("fresh");
        let broker = FsBroker::open(&root).unwrap();
        assert!(broker.ensure_fresh().is_ok());
        broker.submit(&dummy_job(0)).unwrap();
        assert!(broker.ensure_fresh().unwrap_err().contains("stale"));
        // A completed previous run (results + stop) is just as stale.
        let _ = broker.steal("w").unwrap().unwrap();
        broker.complete("w", &dummy_result(0, "w", "done")).unwrap();
        broker.request_shutdown().unwrap();
        assert!(broker.ensure_fresh().unwrap_err().contains("stop"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn ensure_fresh_diagnoses_conflict_leftovers() {
        // A crashed run that recorded diverging duplicates must be
        // called out by name — that spool is evidence, not clutter.
        let root = temp_root("fresh-conflict");
        let broker = FsBroker::open(&root).unwrap();
        broker.complete("a", &dummy_result(3, "a", "one")).unwrap();
        broker.complete("b", &dummy_result(3, "b", "two")).unwrap();
        let err = broker.ensure_fresh().unwrap_err();
        assert!(
            err.contains("1 diverging-duplicate conflict file(s)"),
            "{err}"
        );
        assert!(err.contains("conflict-00000003.b.json"), "{err}");
        assert!(err.contains("determinism"), "{err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shutdown_stops_handing_out_pending_jobs() {
        let root = temp_root("abandon");
        let broker = FsBroker::open(&root).unwrap();
        broker.submit(&dummy_job(0)).unwrap();
        broker.request_shutdown().unwrap();
        assert!(broker.steal("w").unwrap().is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn shutdown_crosses_broker_instances() {
        let root = temp_root("shutdown");
        let coordinator = FsBroker::open(&root).unwrap();
        let worker_side = FsBroker::open(&root).unwrap();
        assert!(!worker_side.shutdown_requested().unwrap());
        coordinator.request_shutdown().unwrap();
        assert!(worker_side.shutdown_requested().unwrap());
        std::fs::remove_dir_all(&root).ok();
    }
}
