//! Primary-key-aligned snapshot diff — the baseline every commercial tool
//! in §2 implements.
//!
//! Records are aligned purely by equality on the key attributes; aligned
//! pairs are reported as *updates* (with changed cells), unmatched source
//! records as deletes and unmatched target records as inserts. This is
//! exactly what breaks under the paper's motivating scenario: "keys of the
//! same records sometimes get reassigned during the update", silently
//! producing *wrong* update reports.

use affidavit_table::{AttrId, FxHashMap, RecordId, Sym};

use affidavit_core::instance::ProblemInstance;

/// The report of a key-based diff.
#[derive(Debug, Clone, Default)]
pub struct KeyedDiff {
    /// `(source, target)` pairs aligned by key equality.
    pub matched: Vec<(RecordId, RecordId)>,
    /// Matched pairs with at least one differing non-key cell, with the
    /// differing attributes.
    pub updates: Vec<(RecordId, RecordId, Vec<AttrId>)>,
    /// Source records whose key has no counterpart.
    pub deletes: Vec<RecordId>,
    /// Target records whose key has no counterpart.
    pub inserts: Vec<RecordId>,
}

impl KeyedDiff {
    /// Fraction of `matched` pairs also present in a reference alignment —
    /// the baseline's alignment accuracy.
    pub fn alignment_accuracy(&self, reference: &[(RecordId, RecordId)]) -> f64 {
        if reference.is_empty() {
            return if self.matched.is_empty() { 1.0 } else { 0.0 };
        }
        let truth: std::collections::HashSet<_> = reference.iter().collect();
        let hits = self.matched.iter().filter(|p| truth.contains(p)).count();
        hits as f64 / reference.len() as f64
    }
}

/// Diff two snapshots by equality on `key_attrs`. Duplicate keys are
/// matched in record order (multiset semantics), mirroring what the
/// commercial tools do on non-unique keys.
pub fn keyed_diff(instance: &ProblemInstance, key_attrs: &[AttrId]) -> KeyedDiff {
    let mut by_key: FxHashMap<Vec<Sym>, (Vec<RecordId>, usize)> = FxHashMap::default();
    for (tid, rec) in instance.target.iter() {
        let key: Vec<Sym> = key_attrs.iter().map(|a| rec.get(a.index())).collect();
        by_key.entry(key).or_default().0.push(tid);
    }

    let mut out = KeyedDiff::default();
    for (sid, rec) in instance.source.iter() {
        let key: Vec<Sym> = key_attrs.iter().map(|a| rec.get(a.index())).collect();
        match by_key.get_mut(&key) {
            Some((tids, next)) if *next < tids.len() => {
                let tid = tids[*next];
                *next += 1;
                out.matched.push((sid, tid));
                let changed: Vec<AttrId> = instance
                    .schema()
                    .attr_ids()
                    .filter(|a| !key_attrs.contains(a))
                    .filter(|a| instance.source.value(sid, *a) != instance.target.value(tid, *a))
                    .collect();
                if !changed.is_empty() {
                    out.updates.push((sid, tid, changed));
                }
            }
            _ => out.deletes.push(sid),
        }
    }
    for (tids, next) in by_key.values() {
        out.inserts.extend_from_slice(&tids[*next..]);
    }
    out.inserts.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table, ValuePool};

    fn instance(src: Vec<Vec<&str>>, tgt: Vec<Vec<&str>>) -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["id", "v"]), &mut pool, src);
        let t = Table::from_rows(Schema::new(["id", "v"]), &mut pool, tgt);
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn stable_keys_diff_correctly() {
        let inst = instance(
            vec![vec!["1", "a"], vec!["2", "b"], vec!["3", "c"]],
            vec![vec!["1", "a"], vec!["2", "B"], vec!["4", "d"]],
        );
        let d = keyed_diff(&inst, &[AttrId(0)]);
        assert_eq!(d.matched.len(), 2);
        assert_eq!(d.updates.len(), 1); // record 2 changed v
        assert_eq!(d.deletes.len(), 1); // id 3
        assert_eq!(d.inserts.len(), 1); // id 4
    }

    #[test]
    fn reassigned_keys_produce_wrong_alignment() {
        // The paper's failure mode: keys permuted, values unchanged.
        // Key diff "aligns" everything but pairs the wrong records.
        let inst = instance(
            vec![vec!["1", "a"], vec!["2", "b"]],
            vec![vec!["2", "a"], vec!["1", "b"]],
        );
        let d = keyed_diff(&inst, &[AttrId(0)]);
        assert_eq!(d.matched.len(), 2);
        // It reports 2 spurious updates …
        assert_eq!(d.updates.len(), 2);
        // … and its alignment accuracy against the true pairing is 0.
        let truth = vec![
            (RecordId(0), RecordId(0)), // "a" row
            (RecordId(1), RecordId(1)), // "b" row
        ];
        assert_eq!(d.alignment_accuracy(&truth), 0.0);
    }

    #[test]
    fn duplicate_keys_multiset_matched() {
        let inst = instance(vec![vec!["1", "a"], vec!["1", "b"]], vec![vec!["1", "x"]]);
        let d = keyed_diff(&inst, &[AttrId(0)]);
        assert_eq!(d.matched.len(), 1);
        assert_eq!(d.deletes.len(), 1);
        assert!(d.inserts.is_empty());
    }
}
