//! Baselines and hardness artifacts for the Affidavit reproduction.
//!
//! * [`keyed_diff`](mod@keyed_diff) — the classic primary-key-aligned snapshot diff (the
//!   commercial tool family of §2). Demonstrably breaks when keys are
//!   reassigned.
//! * [`exact`] — a brute-force optimal Explain-Table-Delta solver over an
//!   explicit candidate function space; validates the heuristic's
//!   optimality on small instances.
//! * [`sat`] — the polynomial-time reduction from 3-SAT of Theorem 3.12,
//!   including the Figure 2 example; combined with the exact solver it
//!   decides satisfiability through optimal explanations.
//! * [`linker`] — a similarity-only record linker (record linking without
//!   function synthesis), the unsupervised-matching strawman of §2.
//!
//! ```
//! use affidavit_baselines::keyed_diff;
//! use affidavit_core::ProblemInstance;
//! use affidavit_table::{AttrId, Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let s = Table::from_rows(Schema::new(["id", "v"]), &mut pool,
//!     vec![vec!["1", "a"], vec!["2", "b"], vec!["3", "gone"]]);
//! let t = Table::from_rows(Schema::new(["id", "v"]), &mut pool,
//!     vec![vec!["1", "a"], vec!["2", "CHANGED"]]);
//! let instance = ProblemInstance::new(s, t, pool).unwrap();
//! let diff = keyed_diff(&instance, &[AttrId(0)]);
//! assert_eq!(diff.matched.len(), 2);
//! assert_eq!(diff.updates.len(), 1);
//! assert_eq!(diff.deletes.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod exact;
pub mod keyed_diff;
pub mod linker;
pub mod sat;

pub use exact::{solve_exact, ExactSolution};
pub use keyed_diff::{keyed_diff, KeyedDiff};
pub use linker::{similarity_link, LinkerResult};
pub use sat::{Clause, Cnf, Lit, SatReduction};
