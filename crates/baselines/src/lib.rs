//! Baselines and hardness artifacts for the Affidavit reproduction.
//!
//! * [`keyed_diff`](mod@keyed_diff) — the classic primary-key-aligned snapshot diff (the
//!   commercial tool family of §2). Demonstrably breaks when keys are
//!   reassigned.
//! * [`exact`] — a brute-force optimal Explain-Table-Delta solver over an
//!   explicit candidate function space; validates the heuristic's
//!   optimality on small instances.
//! * [`sat`] — the polynomial-time reduction from 3-SAT of Theorem 3.12,
//!   including the Figure 2 example; combined with the exact solver it
//!   decides satisfiability through optimal explanations.
//! * [`linker`] — a similarity-only record linker (record linking without
//!   function synthesis), the unsupervised-matching strawman of §2.

#![warn(missing_docs)]

pub mod exact;
pub mod keyed_diff;
pub mod linker;
pub mod sat;

pub use exact::{solve_exact, ExactSolution};
pub use keyed_diff::{keyed_diff, KeyedDiff};
pub use linker::{similarity_link, LinkerResult};
pub use sat::{Clause, Cnf, Lit, SatReduction};
