//! The NP-hardness reduction of Theorem 3.12, executable.
//!
//! A 3-SAT instance becomes an Explain-Table-Delta instance with one
//! source record per clause and one target record per satisfying partial
//! assignment of each clause (2^k − 1 for a k-literal clause). The
//! candidate functions per variable attribute are `id` (variable := true)
//! and boolean negation (variable := false) — both parameter-free in the
//! proof's function space, so explanation costs are determined solely by
//! `|T^E+|` (we use α = 1 to reproduce this). The formula is satisfiable
//! iff the optimal explanation deletes no source record, and a model can
//! then be read off the attribute functions.

use affidavit_core::explanation::Explanation;
use affidavit_core::instance::ProblemInstance;
use affidavit_functions::{AttrFunction, ValueMap};
use affidavit_table::{Record, Schema, Sym, Table, ValuePool};

use crate::exact::solve_exact;

/// A literal: variable index (0-based) and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for a positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal on `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal on `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A clause of up to three literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
#[derive(Debug, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Evaluate under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| assignment[l.var] == l.positive))
    }
}

/// The example formula of Figure 2, read off the source-record rows:
/// `(v1 ∨ v2 ∨ ¬v3) ∧ (¬v1 ∨ v4) ∧ v3` — 3 source and 11 target records.
pub fn figure2_cnf() -> Cnf {
    Cnf {
        num_vars: 4,
        clauses: vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::neg(2)],
            vec![Lit::neg(0), Lit::pos(3)],
            vec![Lit::pos(2)],
        ],
    }
}

/// The reduction output: instance plus the proof's candidate functions.
#[derive(Debug)]
pub struct SatReduction {
    /// The Explain-Table-Delta instance.
    pub instance: ProblemInstance,
    /// Per-attribute candidate functions (`[id]` for `#`, `[id, negation]`
    /// for each variable attribute).
    pub candidates: Vec<Vec<AttrFunction>>,
    /// Number of variables (for model extraction).
    pub num_vars: usize,
}

/// Build the Theorem 3.12 reduction for a CNF formula.
pub fn reduce(cnf: &Cnf) -> SatReduction {
    let mut pool = ValuePool::new();
    let zero = pool.intern("0");
    let one = pool.intern("1");
    let dash = pool.intern("-");

    let mut names = vec!["#".to_owned()];
    names.extend((1..=cnf.num_vars).map(|i| format!("v{i}")));
    let schema = Schema::new(names);

    let mut source = Table::new(schema.clone());
    let mut target = Table::new(schema);

    for (ci, clause) in cnf.clauses.iter().enumerate() {
        let tag = pool.intern(&format!("c{}", ci + 1));
        // Source record: literal polarities.
        let mut row: Vec<Sym> = vec![tag; cnf.num_vars + 1];
        for v in row.iter_mut().skip(1) {
            *v = dash;
        }
        for lit in clause {
            row[lit.var + 1] = if lit.positive { one } else { zero };
        }
        source.push(Record::new(row));

        // Target records: one per satisfying assignment of the clause's
        // own variables (2^k − 1 of them).
        let k = clause.len();
        for bits in 0..(1u32 << k) {
            let truth = |j: usize| bits & (1 << j) != 0;
            let satisfied = clause
                .iter()
                .enumerate()
                .any(|(j, lit)| truth(j) == lit.positive);
            if !satisfied {
                continue;
            }
            let mut row: Vec<Sym> = vec![tag; cnf.num_vars + 1];
            for v in row.iter_mut().skip(1) {
                *v = dash;
            }
            for (j, lit) in clause.iter().enumerate() {
                // '1' iff the literal's polarity agrees with the model.
                row[lit.var + 1] = if truth(j) == lit.positive { one } else { zero };
            }
            target.push(Record::new(row));
        }
    }

    // Boolean negation: swap '0' and '1', identity otherwise. In the
    // proof's function space ψ(negation) = 0; we reproduce the "costs are
    // solely |T^E+|" property by solving at α = 1.
    let negation = AttrFunction::Map(ValueMap::from_pairs([(zero, one), (one, zero)]));
    let mut candidates = vec![vec![AttrFunction::Identity]];
    for _ in 0..cnf.num_vars {
        candidates.push(vec![AttrFunction::Identity, negation.clone()]);
    }

    SatReduction {
        instance: ProblemInstance::new(source, target, pool).expect("schemas match"),
        candidates,
        num_vars: cnf.num_vars,
    }
}

impl SatReduction {
    /// Decide satisfiability by solving the reduction optimally. Returns
    /// the model if satisfiable.
    pub fn solve(&mut self) -> Option<Vec<bool>> {
        let sol = solve_exact(&mut self.instance, &self.candidates, 1.0, 1 << 24);
        if sol.explanation.deleted.is_empty() {
            Some(Self::extract_model(&sol.explanation, self.num_vars))
        } else {
            None
        }
    }

    /// Read the model off an explanation's attribute functions:
    /// `vi := true` iff `f_vi = id`.
    pub fn extract_model(explanation: &Explanation, num_vars: usize) -> Vec<bool> {
        (0..num_vars)
            .map(|v| explanation.functions[v + 1].is_identity())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape() {
        let red = reduce(&figure2_cnf());
        assert_eq!(red.instance.source.len(), 3, "3 source records");
        assert_eq!(red.instance.target.len(), 11, "11 target records");
        assert_eq!(red.instance.arity(), 5); // # + v1..v4
    }

    #[test]
    fn figure2_is_satisfiable_with_a_real_model() {
        let cnf = figure2_cnf();
        let mut red = reduce(&cnf);
        let model = red.solve().expect("Figure 2's formula is satisfiable");
        assert!(cnf.eval(&model), "extracted model must satisfy the CNF");
        // v3 must be true (unit clause c3).
        assert!(model[2]);
    }

    #[test]
    fn unsatisfiable_formula_detected() {
        let cnf = Cnf {
            num_vars: 1,
            clauses: vec![vec![Lit::pos(0)], vec![Lit::neg(0)]],
        };
        let mut red = reduce(&cnf);
        assert!(red.solve().is_none());
    }

    #[test]
    fn all_models_enumerated_per_clause() {
        // A 3-literal clause yields 7 targets, a 2-literal 3, a unit 1.
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]],
        };
        let red = reduce(&cnf);
        assert_eq!(red.instance.target.len(), 7);
    }

    #[test]
    fn tautology_free_structure() {
        // Satisfiable 2-clause formula over shared variables.
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(1)],
            ],
        };
        let mut red = reduce(&cnf);
        let model = red.solve().expect("satisfiable");
        assert!(cnf.eval(&model));
        assert!(model[1], "v2 = true is forced in every solution");
    }
}
