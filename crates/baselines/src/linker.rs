//! Similarity-only record linking — unsupervised matching *without*
//! function synthesis.
//!
//! Scores candidate pairs by the number of attributes on which they agree
//! exactly (the overlap signal of §4.2), then greedily matches best-first
//! with uniqueness on both sides. Systematically transformed attributes
//! contribute nothing to the score — exactly the weakness Affidavit's
//! transformation learning fixes (§2: linking "purely based on a fuzzy
//! notion of similarity").

use affidavit_core::instance::ProblemInstance;
use affidavit_table::{FxHashMap, RecordId, Sym};

/// Result of the similarity-only linker.
#[derive(Debug, Clone, Default)]
pub struct LinkerResult {
    /// Greedily matched `(source, target)` pairs.
    pub matched: Vec<(RecordId, RecordId)>,
    /// Unmatched source records.
    pub unmatched_source: Vec<RecordId>,
    /// Unmatched target records.
    pub unmatched_target: Vec<RecordId>,
}

impl LinkerResult {
    /// Fraction of a reference alignment recovered.
    pub fn alignment_recall(&self, reference: &[(RecordId, RecordId)]) -> f64 {
        if reference.is_empty() {
            return 1.0;
        }
        let truth: std::collections::HashSet<_> = reference.iter().collect();
        let hits = self.matched.iter().filter(|p| truth.contains(p)).count();
        hits as f64 / reference.len() as f64
    }
}

/// Link records by exact-match attribute overlap. `max_pairs_per_value`
/// bounds the blocking fan-out exactly like the `Hs` matcher.
pub fn similarity_link(instance: &ProblemInstance, max_pairs_per_value: usize) -> LinkerResult {
    let arity = instance.arity();
    let mut scores: FxHashMap<(RecordId, RecordId), u32> = FxHashMap::default();
    let mut tgt_index: FxHashMap<Sym, Vec<RecordId>> = FxHashMap::default();
    let mut src_count: FxHashMap<Sym, usize> = FxHashMap::default();

    for a in 0..arity {
        tgt_index.clear();
        src_count.clear();
        for (tid, rec) in instance.target.iter() {
            tgt_index.entry(rec.get(a)).or_default().push(tid);
        }
        for (_, rec) in instance.source.iter() {
            *src_count.entry(rec.get(a)).or_default() += 1;
        }
        for (sid, rec) in instance.source.iter() {
            let v = rec.get(a);
            let Some(tids) = tgt_index.get(&v) else {
                continue;
            };
            if src_count[&v] * tids.len() > max_pairs_per_value {
                continue;
            }
            for &tid in tids {
                *scores.entry((sid, tid)).or_default() += 1;
            }
        }
    }

    // Greedy best-first matching with uniqueness (stable order: score
    // desc, then ids asc for determinism).
    let mut ranked: Vec<((RecordId, RecordId), u32)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut used_s = vec![false; instance.source.len()];
    let mut used_t = vec![false; instance.target.len()];
    let mut out = LinkerResult::default();
    for ((sid, tid), _) in ranked {
        if !used_s[sid.index()] && !used_t[tid.index()] {
            used_s[sid.index()] = true;
            used_t[tid.index()] = true;
            out.matched.push((sid, tid));
        }
    }
    out.unmatched_source = instance
        .source
        .record_ids()
        .filter(|r| !used_s[r.index()])
        .collect();
    out.unmatched_target = instance
        .target
        .record_ids()
        .filter(|r| !used_t[r.index()])
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table, ValuePool};

    #[test]
    fn links_on_shared_attributes() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![vec!["a", "1"], vec!["b", "2"]],
        );
        let t = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![vec!["b", "200"], vec!["a", "100"]],
        );
        let inst = ProblemInstance::new(s, t, pool).unwrap();
        let r = similarity_link(&inst, 1000);
        assert_eq!(r.matched.len(), 2);
        let truth = vec![(RecordId(0), RecordId(1)), (RecordId(1), RecordId(0))];
        assert_eq!(r.alignment_recall(&truth), 1.0);
    }

    #[test]
    fn transformed_attributes_contribute_nothing() {
        // Every attribute transformed: zero exact overlap, nothing linked.
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["v"]),
            &mut pool,
            vec![vec!["1000"], vec!["2000"]],
        );
        let t = Table::from_rows(Schema::new(["v"]), &mut pool, vec![vec!["1"], vec!["2"]]);
        let inst = ProblemInstance::new(s, t, pool).unwrap();
        let r = similarity_link(&inst, 1000);
        assert!(r.matched.is_empty());
        assert_eq!(r.unmatched_source.len(), 2);
        assert_eq!(r.unmatched_target.len(), 2);
    }
}
