//! Brute-force optimal Explain-Table-Delta solver.
//!
//! Enumerates the full Cartesian product of per-attribute candidate
//! functions, constructs each explanation via Prop. 3.6 and keeps the
//! cheapest. Exponential, of course (the problem is NP-hard) — usable for
//! tiny instances, for validating the heuristic's optimality, and as the
//! decision procedure behind the 3-SAT reduction.

use affidavit_core::explanation::Explanation;
use affidavit_core::instance::ProblemInstance;
use affidavit_functions::AttrFunction;

/// An optimal solution found by exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The cheapest explanation.
    pub explanation: Explanation,
    /// Its cost at the α used for the search.
    pub cost: f64,
    /// Number of function tuples evaluated.
    pub evaluated: usize,
}

/// Exhaustively solve the instance over `candidates[a]` per attribute.
///
/// `alpha` weighs the Def. 3.10 cost. Panics if the product of candidate
/// counts exceeds `limit` (protects against accidental blow-ups).
pub fn solve_exact(
    instance: &mut ProblemInstance,
    candidates: &[Vec<AttrFunction>],
    alpha: f64,
    limit: usize,
) -> ExactSolution {
    assert_eq!(candidates.len(), instance.arity());
    assert!(
        candidates.iter().all(|c| !c.is_empty()),
        "empty candidate set"
    );
    let combos: usize = candidates
        .iter()
        .map(|c| c.len())
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .expect("candidate space overflows usize");
    assert!(
        combos <= limit,
        "candidate space has {combos} tuples, over the limit of {limit}"
    );

    let arity = instance.arity();
    let mut indices = vec![0usize; arity];
    let mut best: Option<(f64, Explanation)> = None;
    let mut evaluated = 0usize;

    loop {
        let functions: Vec<AttrFunction> = indices
            .iter()
            .enumerate()
            .map(|(a, &i)| candidates[a][i].clone())
            .collect();
        let explanation = Explanation::from_functions(functions, instance);
        let cost = explanation.cost(alpha, arity);
        evaluated += 1;
        let better = match &best {
            None => true,
            Some((bc, _)) => cost < *bc,
        };
        if better {
            best = Some((cost, explanation));
        }
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == arity {
                let (cost, explanation) = best.expect("at least one tuple evaluated");
                return ExactSolution {
                    explanation,
                    cost,
                    evaluated,
                };
            }
            indices[pos] += 1;
            if indices[pos] < candidates[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Rational, Schema, Table, ValuePool};

    fn instance() -> ProblemInstance {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![
                vec!["1000", "IBM"],
                vec!["2000", "SAP"],
                vec!["3000", "IBM"],
            ],
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Org"]),
            &mut pool,
            vec![vec!["1", "IBM"], vec!["2", "SAP"], vec!["3", "IBM"]],
        );
        ProblemInstance::new(s, t, pool).unwrap()
    }

    #[test]
    fn finds_the_optimum() {
        let mut inst = instance();
        let div1000 = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
        let candidates = vec![
            vec![AttrFunction::Identity, div1000.clone()],
            vec![AttrFunction::Identity, AttrFunction::Uppercase],
        ];
        let sol = solve_exact(&mut inst, &candidates, 0.5, 1000);
        assert_eq!(sol.evaluated, 4);
        assert_eq!(sol.explanation.functions[0], div1000);
        assert!(sol.explanation.functions[1].is_identity());
        assert_eq!(sol.explanation.core_size(), 3);
        assert_eq!(sol.cost, 1.0); // ψ(scale) = 1, nothing inserted
    }

    #[test]
    #[should_panic(expected = "over the limit")]
    fn limit_guards_blowup() {
        let mut inst = instance();
        let big: Vec<AttrFunction> = vec![AttrFunction::Identity; 100];
        let candidates = vec![big.clone(), big];
        let _ = solve_exact(&mut inst, &candidates, 0.5, 100);
    }
}
