//! Random alignments and greedy value maps (Algorithm 1's `R` and `Hд`).
//!
//! `Sample-Random-Alignment(Φ^H)` pairs up source and target records within
//! each block uniformly at random; `Induce-Greedy-Map(R, a)` builds the map
//! function that sends each source value of attribute `a` to the target
//! value it co-occurs with most often in the alignment. This is the
//! benchmark a candidate function must beat during extension, and the
//! fallback used to resolve ⊞-marked attributes at finalization.

use affidavit_functions::ValueMap;
use affidavit_table::{AttrId, FxHashMap, RecordId, Sym, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::blocking::Blocking;

/// Sample a random alignment of source and target records that respects the
/// blocking result: only records in the same block are paired, and each
/// record is used at most once (`min(|φ_S|, |φ_T|)` pairs per block).
pub fn sample_random_alignment(blocking: &Blocking, rng: &mut StdRng) -> Vec<(RecordId, RecordId)> {
    let mut pairs = Vec::new();
    let mut src_buf: Vec<RecordId> = Vec::new();
    let mut tgt_buf: Vec<RecordId> = Vec::new();
    for block in blocking.mixed_blocks() {
        src_buf.clear();
        src_buf.extend_from_slice(&block.src);
        tgt_buf.clear();
        tgt_buf.extend_from_slice(&block.tgt);
        src_buf.shuffle(rng);
        tgt_buf.shuffle(rng);
        let n = src_buf.len().min(tgt_buf.len());
        pairs.extend(
            src_buf[..n]
                .iter()
                .copied()
                .zip(tgt_buf[..n].iter().copied()),
        );
    }
    pairs
}

/// Build the greedy value map for `attr` from an alignment: each source
/// value maps to its most frequent co-occurring target value (ties broken
/// deterministically towards the smaller symbol). Identity pairs are dropped
/// by [`ValueMap::from_pairs`] since unmapped values fall through unchanged.
pub fn greedy_map_from_alignment(
    pairs: &[(RecordId, RecordId)],
    attr: AttrId,
    source: &Table,
    target: &Table,
) -> ValueMap {
    // counts[s_val][t_val] = co-occurrence count
    let mut counts: FxHashMap<Sym, FxHashMap<Sym, u32>> = FxHashMap::default();
    for &(sid, tid) in pairs {
        let sv = source.value(sid, attr);
        let tv = target.value(tid, attr);
        *counts.entry(sv).or_default().entry(tv).or_default() += 1;
    }
    let mut entries: Vec<(Sym, Sym)> = Vec::with_capacity(counts.len());
    for (sv, tmap) in counts {
        let best = tmap
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(tv, _)| tv)
            .expect("tmap has at least one entry");
        entries.push((sv, best));
    }
    ValueMap::from_pairs(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, Table, ValuePool};
    use rand::SeedableRng;

    fn tables() -> (Table, Table, ValuePool) {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![
                vec!["a", "1"],
                vec!["a", "1"],
                vec!["a", "1"],
                vec!["b", "2"],
            ],
        );
        let t = Table::from_rows(
            Schema::new(["k", "v"]),
            &mut pool,
            vec![
                vec!["a", "10"],
                vec!["a", "10"],
                vec!["a", "99"],
                vec!["b", "20"],
            ],
        );
        (s, t, pool)
    }

    fn blocked_on_k(s: &Table, t: &Table, pool: &mut ValuePool) -> Blocking {
        use affidavit_functions::{ApplyScratch, AttrFunction};
        let mut scratch = ApplyScratch::new();
        Blocking::root(s, t).refine(
            affidavit_table::AttrId(0),
            &AttrFunction::Identity,
            &mut scratch,
            s,
            t,
            pool,
        )
    }

    #[test]
    fn alignment_respects_blocks() {
        let (s, t, mut pool) = tables();
        let blocking = blocked_on_k(&s, &t, &mut pool);
        let mut rng = StdRng::seed_from_u64(7);
        let pairs = sample_random_alignment(&blocking, &mut rng);
        assert_eq!(pairs.len(), 4); // 3 pairs in block a, 1 in block b
        for (sid, tid) in pairs {
            assert_eq!(
                s.value(sid, affidavit_table::AttrId(0)),
                t.value(tid, affidavit_table::AttrId(0)),
                "pair crosses blocks"
            );
        }
    }

    #[test]
    fn alignment_uses_each_record_once() {
        let (s, t, mut pool) = tables();
        let blocking = blocked_on_k(&s, &t, &mut pool);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = sample_random_alignment(&blocking, &mut rng);
        let mut seen_s: Vec<_> = pairs.iter().map(|p| p.0).collect();
        let mut seen_t: Vec<_> = pairs.iter().map(|p| p.1).collect();
        seen_s.sort();
        seen_s.dedup();
        seen_t.sort();
        seen_t.dedup();
        assert_eq!(seen_s.len(), pairs.len());
        assert_eq!(seen_t.len(), pairs.len());
    }

    #[test]
    fn greedy_map_picks_majority() {
        let (s, t, mut pool) = tables();
        let blocking = blocked_on_k(&s, &t, &mut pool);
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = sample_random_alignment(&blocking, &mut rng);
        let map = greedy_map_from_alignment(&pairs, affidavit_table::AttrId(1), &s, &t);
        // Source value "1" co-occurs with "10" twice and "99" once (in the
        // 3-pair block): majority must win regardless of shuffle.
        let one = pool.lookup("1").unwrap();
        let ten = pool.lookup("10").unwrap();
        assert_eq!(map.apply(one), ten);
    }

    #[test]
    fn greedy_map_is_deterministic_given_alignment() {
        let (s, t, _) = tables();
        let pairs = vec![
            (RecordId(0), RecordId(0)),
            (RecordId(1), RecordId(2)),
            (RecordId(3), RecordId(3)),
        ];
        let a = greedy_map_from_alignment(&pairs, affidavit_table::AttrId(1), &s, &t);
        let b = greedy_map_from_alignment(&pairs, affidavit_table::AttrId(1), &s, &t);
        assert_eq!(a, b);
    }
}
