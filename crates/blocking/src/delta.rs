//! Stable block identity for incremental re-profiling (`--delta`).
//!
//! A finished search's function assignment induces a *final blocking*:
//! refining the root block on every attribute groups records by their
//! full projection, so each block is exactly one equivalence class of
//! (transformed source tuple = raw target tuple). That partition is a
//! natural unit of incremental reuse — an edit only perturbs the blocks
//! whose records it touches — and this module gives it a *stable
//! identity*: consecutive blocks are merged into at most [`MAX_GROUPS`]
//! groups (plus one pseudo-group for dead sources) and each group is
//! fingerprinted with the streaming FNV-1a hasher from
//! `affidavit_store::fingerprint`.
//!
//! The fingerprints are **interning-independent**: they hash record
//! positions and *resolved strings* (length-prefixed), never `Sym`
//! values, so two runs that interned in different orders (RAM vs. disk
//! pool, warm vs. cold session) agree on every group fingerprint. They
//! are also **position-sensitive**: record ids feed the hash, so a row
//! reorder dirties the groups it crosses even when the multiset of rows
//! is unchanged — which is exactly what makes "every group clean" imply
//! "both tables are identical *as indexed sequences*", the property the
//! delta layer needs before it may splice record ids from a manifest.

use affidavit_functions::{ApplyScratch, AttrFunction};
use affidavit_store::{Fingerprint, Fnv};
use affidavit_table::{AttrId, Interner, Table};

use crate::blocking::Blocking;

/// Upper bound on fingerprint groups per table pair (the dead-source
/// pseudo-group comes on top). Small enough that a manifest stays
/// compact, large enough that the reuse counters resolve dirty
/// fractions well below 2%.
pub const MAX_GROUPS: usize = 64;

/// Derive the final blocking induced by a full function assignment:
/// refine the root block once per attribute, in attribute order — the
/// same deterministic passes the search itself performs, so the block
/// order depends only on table contents and functions (first-seen key
/// order per refinement), never on interning history.
pub fn final_blocking<I: Interner>(
    functions: &[AttrFunction],
    source: &Table,
    target: &Table,
    pool: &mut I,
) -> Blocking {
    let mut blocking = Blocking::root(source, target);
    let mut scratch = ApplyScratch::new();
    for (a, func) in functions.iter().enumerate() {
        blocking = blocking.refine(AttrId(a as u32), func, &mut scratch, source, target, pool);
    }
    blocking
}

/// The contiguous group a block lands in: block `i` of `n` maps to
/// `i·g/n` with `g = min(`[`MAX_GROUPS`]`, n)` — balanced, order-
/// preserving, and stable for a fixed block count.
pub fn group_of_block(block_index: usize, n_blocks: usize) -> usize {
    let g = n_blocks.clamp(1, MAX_GROUPS);
    block_index * g / n_blocks.max(1)
}

/// Per-record group assignment for one final blocking. Group indices
/// `0..count` are real groups; `count` itself is the dead-source
/// pseudo-group.
#[derive(Debug)]
pub struct BlockGroups {
    /// Real (non-dead) group count `g`.
    pub count: usize,
    /// Source record index → group (`count` = dead).
    pub src_group: Vec<u32>,
    /// Target record index → group.
    pub tgt_group: Vec<u32>,
}

/// Map every record of `blocking` to its fingerprint group.
pub fn group_records(blocking: &Blocking, n_src: usize, n_tgt: usize) -> BlockGroups {
    let n_blocks = blocking.blocks.len();
    let count = n_blocks.clamp(1, MAX_GROUPS);
    let mut src_group = vec![count as u32; n_src];
    let mut tgt_group = vec![count as u32; n_tgt];
    for (i, block) in blocking.blocks.iter().enumerate() {
        let g = group_of_block(i, n_blocks) as u32;
        for &sid in &block.src {
            src_group[sid.index()] = g;
        }
        for &tid in &block.tgt {
            tgt_group[tid.index()] = g;
        }
    }
    // dead_src stays at the pseudo-group it was initialized to.
    BlockGroups {
        count,
        src_group,
        tgt_group,
    }
}

fn feed_row<I: Interner>(fnv: &mut Fnv, table: &Table, row: usize, pool: &I) {
    for sym in table.row(affidavit_table::RecordId(row as u32)).iter() {
        fnv.update_str(pool.get(sym));
    }
}

/// Fingerprint every group of a final blocking: one entry per real
/// group in group order, then the dead-source pseudo-group last. Each
/// record feeds a tag byte, its id, and its resolved row strings; a
/// separator closes each block, so group fingerprints see the block
/// partition itself, not just the records.
pub fn group_fingerprints<I: Interner>(
    blocking: &Blocking,
    source: &Table,
    target: &Table,
    pool: &I,
) -> Vec<Fingerprint> {
    let n_blocks = blocking.blocks.len();
    let count = n_blocks.clamp(1, MAX_GROUPS);
    let mut hashers: Vec<Fnv> = (0..count + 1).map(|_| Fnv::new()).collect();
    for (i, block) in blocking.blocks.iter().enumerate() {
        let fnv = &mut hashers[group_of_block(i, n_blocks)];
        for &sid in &block.src {
            fnv.update(b"s");
            fnv.update_u64(sid.0 as u64);
            feed_row(fnv, source, sid.index(), pool);
        }
        for &tid in &block.tgt {
            fnv.update(b"t");
            fnv.update_u64(tid.0 as u64);
            feed_row(fnv, target, tid.index(), pool);
        }
        fnv.update(b"|");
    }
    let dead = &mut hashers[count];
    for &sid in &blocking.dead_src {
        dead.update(b"d");
        dead.update_u64(sid.0 as u64);
        feed_row(dead, source, sid.index(), pool);
    }
    hashers.iter().map(Fnv::finish).collect()
}

/// Fingerprint the pair-level frame the group fingerprints live in:
/// schema names, arity, row counts, block and dead counts. Two runs
/// whose header and group fingerprints all agree staged identical
/// instances.
pub fn header_fingerprint(blocking: &Blocking, source: &Table, target: &Table) -> Fingerprint {
    let mut fnv = Fnv::new();
    fnv.update_u64(source.schema().arity() as u64);
    for name in source.schema().names() {
        fnv.update_str(name);
    }
    fnv.update_u64(source.len() as u64);
    fnv.update_u64(target.len() as u64);
    fnv.update_u64(blocking.blocks.len() as u64);
    fnv.update_u64(blocking.dead_src.len() as u64);
    fnv.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_functions::AttrFunction;
    use affidavit_table::{Rational, Schema, Table, ValuePool};

    fn tables(pool: &mut ValuePool, rows: &[(&str, &str)]) -> (Table, Table) {
        let rows: Vec<Vec<&str>> = rows.iter().map(|(k, v)| vec![*k, *v]).collect();
        let s = Table::from_rows(Schema::new(["k", "v"]), pool, rows.clone());
        let t = Table::from_rows(Schema::new(["k", "v"]), pool, rows);
        (s, t)
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let mut pool = ValuePool::new();
        let (s, t) = tables(&mut pool, &[("a", "1"), ("b", "2"), ("c", "3")]);
        let funcs = vec![AttrFunction::Identity, AttrFunction::Identity];
        let blocking = final_blocking(&funcs, &s, &t, &mut pool);
        let fps = group_fingerprints(&blocking, &s, &t, &pool);
        // Same content in a *fresh* pool (different interning history):
        // identical fingerprints.
        let mut pool2 = ValuePool::new();
        pool2.intern("decoy"); // shift every Sym
        let (s2, t2) = tables(&mut pool2, &[("a", "1"), ("b", "2"), ("c", "3")]);
        let blocking2 = final_blocking(&funcs, &s2, &t2, &mut pool2);
        assert_eq!(fps, group_fingerprints(&blocking2, &s2, &t2, &pool2));
        assert_eq!(
            header_fingerprint(&blocking, &s, &t),
            header_fingerprint(&blocking2, &s2, &t2)
        );
        // One edited cell changes at least one fingerprint.
        let mut pool3 = ValuePool::new();
        let (s3, t3) = tables(&mut pool3, &[("a", "1"), ("b", "9"), ("c", "3")]);
        let blocking3 = final_blocking(&funcs, &s3, &t3, &mut pool3);
        assert_ne!(fps, group_fingerprints(&blocking3, &s3, &t3, &pool3));
    }

    #[test]
    fn a_row_reorder_is_dirty_even_with_equal_multisets() {
        let funcs = vec![AttrFunction::Identity, AttrFunction::Identity];
        let mut pool = ValuePool::new();
        let (s, t) = tables(&mut pool, &[("a", "1"), ("b", "2")]);
        let fps = {
            let b = final_blocking(&funcs, &s, &t, &mut pool);
            group_fingerprints(&b, &s, &t, &pool)
        };
        let mut pool2 = ValuePool::new();
        let (s2, t2) = tables(&mut pool2, &[("b", "2"), ("a", "1")]);
        let b2 = final_blocking(&funcs, &s2, &t2, &mut pool2);
        assert_ne!(
            fps,
            group_fingerprints(&b2, &s2, &t2, &pool2),
            "position-sensitivity: reordered rows must not look clean"
        );
    }

    #[test]
    fn dead_sources_land_in_the_pseudo_group() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["v"]),
            &mut pool,
            vec![vec!["10"], vec!["IBM"]], // IBM: scale inapplicable → dead
        );
        let t = Table::from_rows(Schema::new(["v"]), &mut pool, vec![vec!["1"]]);
        let funcs = vec![AttrFunction::Scale(Rational::new(1, 10).unwrap())];
        let blocking = final_blocking(&funcs, &s, &t, &mut pool);
        assert_eq!(blocking.dead_src.len(), 1);
        let groups = group_records(&blocking, s.len(), t.len());
        assert_eq!(groups.src_group[1] as usize, groups.count);
        let fps = group_fingerprints(&blocking, &s, &t, &pool);
        assert_eq!(fps.len(), groups.count + 1);
        // Editing the dead row dirties only the pseudo-group.
        let mut pool2 = ValuePool::new();
        let s2 = Table::from_rows(
            Schema::new(["v"]),
            &mut pool2,
            vec![vec!["10"], vec!["SAP"]],
        );
        let t2 = Table::from_rows(Schema::new(["v"]), &mut pool2, vec![vec!["1"]]);
        let b2 = final_blocking(&funcs, &s2, &t2, &mut pool2);
        let fps2 = group_fingerprints(&b2, &s2, &t2, &pool2);
        assert_eq!(fps[..groups.count], fps2[..groups.count]);
        assert_ne!(fps[groups.count], fps2[groups.count]);
    }

    #[test]
    fn many_blocks_fold_into_bounded_balanced_groups() {
        let n = 500usize;
        let mut pool = ValuePool::new();
        let rows: Vec<Vec<String>> = (0..n).map(|i| vec![format!("k{i}")]).collect();
        let s = Table::from_rows(Schema::new(["k"]), &mut pool, rows.clone());
        let t = Table::from_rows(Schema::new(["k"]), &mut pool, rows);
        let blocking = final_blocking(&[AttrFunction::Identity], &s, &t, &mut pool);
        assert_eq!(blocking.blocks.len(), n);
        let fps = group_fingerprints(&blocking, &s, &t, &pool);
        assert_eq!(fps.len(), MAX_GROUPS + 1);
        // Every block maps into range, in nondecreasing group order.
        let mut last = 0;
        for i in 0..n {
            let g = group_of_block(i, n);
            assert!(g < MAX_GROUPS);
            assert!(g >= last);
            last = g;
        }
    }
}
