//! Blocking substrate for the Affidavit search.
//!
//! A search state's partial function assignments act as standard blocking
//! criteria (Def. 4.3): source records are projected through the assigned
//! functions, target records through the raw values, and records with equal
//! projections land in the same block (Def. 4.4). The search only ever adds
//! one assignment at a time, so a child state's blocking is computed by
//! *refining* the parent's blocks on the newly assigned attribute — O(N)
//! with small constants instead of re-hashing full-width keys.
//!
//! The crate also provides the two alignment tools Algorithm 1 needs:
//! random alignments respecting a blocking result (for the greedy-map
//! baseline `Hg` and for ⊞ finalization) and the overlap-score a-priori
//! matcher that builds the `Hs` start state (§4.2).
//!
//! ```
//! use affidavit_blocking::Blocking;
//! use affidavit_functions::{ApplyScratch, AttrFunction};
//! use affidavit_table::{AttrId, Schema, Table, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let s = Table::from_rows(Schema::new(["Org"]), &mut pool,
//!     vec![vec!["IBM"], vec!["SAP"], vec!["IBM"]]);
//! let t = Table::from_rows(Schema::new(["Org"]), &mut pool,
//!     vec![vec!["IBM"], vec!["SAP"], vec!["IBM"]]);
//! // The root blocking is one block with every record; assigning
//! // f_Org = id refines it into one block per Org value.
//! let root = Blocking::root(&s, &t);
//! assert_eq!(root.len(), 1);
//! let refined = root.refine(
//!     AttrId(0), &AttrFunction::Identity, &mut ApplyScratch::new(), &s, &t, &mut pool,
//! );
//! assert_eq!(refined.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod alignment;
pub mod blocking;
pub mod delta;
pub mod overlap;

pub use alignment::{greedy_map_from_alignment, sample_random_alignment};
pub use blocking::{Block, Blocking};
pub use delta::{final_blocking, group_fingerprints, group_records, header_fingerprint};
pub use overlap::{overlap_start_attrs, OverlapConfig};
