//! Blocking results Φ^H (Definitions 4.3 and 4.4) with incremental
//! refinement.

use affidavit_functions::{ApplyScratch, AttrFunction};
use affidavit_table::{AttrId, FxHashMap, FxHashSet, Interner, RecordId, Sym, Table};

/// One block φ(κ): the source and target records sharing a blocking index.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Source records in the block (`φ_S(κ)`).
    pub src: Vec<RecordId>,
    /// Target records in the block (`φ_T(κ)`).
    pub tgt: Vec<RecordId>,
}

impl Block {
    /// True if the block holds both source and target records — only such
    /// blocks can contribute alignment examples.
    pub fn is_mixed(&self) -> bool {
        !self.src.is_empty() && !self.tgt.is_empty()
    }

    /// Target surplus `max(0, |φ_T| − |φ_S|)`.
    pub fn target_surplus(&self) -> u64 {
        (self.tgt.len() as u64).saturating_sub(self.src.len() as u64)
    }

    /// Source surplus `max(0, |φ_S| − |φ_T|)`.
    pub fn source_surplus(&self) -> u64 {
        (self.src.len() as u64).saturating_sub(self.tgt.len() as u64)
    }
}

/// The blocking result Φ^H of a search state.
///
/// `dead_src` holds source records on which some assigned function was
/// inapplicable (partial application returned `None`); they can never align
/// with any target under this state and count towards the `cs` lower bound.
#[derive(Debug, Clone, Default)]
pub struct Blocking {
    /// All blocks, in deterministic (parent-order, first-seen) order.
    pub blocks: Vec<Block>,
    /// Source records excluded by partial function application.
    pub dead_src: Vec<RecordId>,
}

impl Blocking {
    /// The root blocking of the empty assignment `H^∅ = (∗, …, ∗)`: a
    /// single block containing every record.
    pub fn root(source: &Table, target: &Table) -> Blocking {
        Blocking {
            blocks: vec![Block {
                src: source.record_ids().collect(),
                tgt: target.record_ids().collect(),
            }],
            dead_src: Vec::new(),
        }
    }

    /// Refine on a newly assigned attribute: every block splits by the
    /// *transformed* source value vs. the raw target value of `attr`.
    ///
    /// Function application is memoized in the caller's [`ApplyScratch`]
    /// (reset on entry) and interns transformed values into `pool` — a
    /// worker passes its `ScratchPool` overlay here, so refinement never
    /// touches shared mutable state.
    pub fn refine<I: Interner>(
        &self,
        attr: AttrId,
        func: &AttrFunction,
        scratch: &mut ApplyScratch,
        source: &Table,
        target: &Table,
        pool: &mut I,
    ) -> Blocking {
        scratch.begin();
        let mut out = Blocking {
            blocks: Vec::with_capacity(self.blocks.len()),
            dead_src: self.dead_src.clone(),
        };
        // Workhorse map reused across blocks (cleared via drain).
        let mut groups: FxHashMap<Sym, Block> = FxHashMap::default();
        let mut order: Vec<Sym> = Vec::new();
        for block in &self.blocks {
            for &sid in &block.src {
                let raw = source.value(sid, attr);
                match scratch.apply(func, raw, pool) {
                    Some(key) => {
                        let entry = groups.entry(key).or_insert_with(|| {
                            order.push(key);
                            Block::default()
                        });
                        entry.src.push(sid);
                    }
                    None => out.dead_src.push(sid),
                }
            }
            for &tid in &block.tgt {
                let key = target.value(tid, attr);
                let entry = groups.entry(key).or_insert_with(|| {
                    order.push(key);
                    Block::default()
                });
                entry.tgt.push(tid);
            }
            for key in order.drain(..) {
                let b = groups.remove(&key).expect("key was inserted above");
                out.blocks.push(b);
            }
        }
        out
    }

    /// Lower bound on inserted targets from this blocking alone:
    /// `ct(H) = Σ_{|φ_T| > |φ_S|} (|φ_T| − |φ_S|)` (§4.5).
    pub fn ct(&self) -> u64 {
        self.blocks.iter().map(Block::target_surplus).sum()
    }

    /// Lower bound on deleted sources:
    /// `cs(H) = Σ_{|φ_S| > |φ_T|} (|φ_S| − |φ_T|)` plus the dead sources.
    pub fn cs(&self) -> u64 {
        let surplus: u64 = self.blocks.iter().map(Block::source_surplus).sum();
        surplus + self.dead_src.len() as u64
    }

    /// Iterate over the mixed blocks (both sides non-empty).
    pub fn mixed_blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(|b| b.is_mixed())
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Indeterminacy estimate of an attribute under this blocking (§4.3):
    /// the maximum number of distinct *source* values of `attr` over all
    /// mixed blocks — an upper bound for how many source values compete as
    /// the origin of a target value.
    pub fn indeterminacy(&self, attr: AttrId, source: &Table) -> usize {
        let mut distinct: FxHashSet<Sym> = FxHashSet::default();
        let mut max = 0usize;
        for block in self.mixed_blocks() {
            distinct.clear();
            for &sid in &block.src {
                distinct.insert(source.value(sid, attr));
            }
            max = max.max(distinct.len());
        }
        max
    }

    /// Total number of source records still inside blocks (excludes dead).
    pub fn live_sources(&self) -> usize {
        self.blocks.iter().map(|b| b.src.len()).sum()
    }

    /// Total number of target records (always all of T).
    pub fn total_targets(&self) -> usize {
        self.blocks.iter().map(|b| b.tgt.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, ValuePool};

    fn tables() -> (Table, Table, ValuePool) {
        let mut pool = ValuePool::new();
        // Mirrors the spirit of Figure 3: Type / Val / Unit / Org.
        let s = Table::from_rows(
            Schema::new(["Type", "Val", "Unit", "Org"]),
            &mut pool,
            vec![
                vec!["C", "6540", "USD", "SAP"],
                vec!["C", "9800", "USD", "SAP"],
                vec!["C", "0", "USD", "SAP"],
                vec!["A", "80000", "USD", "IBM"],
            ],
        );
        let t = Table::from_rows(
            Schema::new(["Type", "Val", "Unit", "Org"]),
            &mut pool,
            vec![
                vec!["C", "9.8", "k $", "SAP"],
                vec!["C", "6.54", "k $", "SAP"],
                vec!["A", "80", "k $", "IBM"],
            ],
        );
        (s, t, pool)
    }

    #[test]
    fn root_has_single_block() {
        let (s, t, _) = tables();
        let b = Blocking::root(&s, &t);
        assert_eq!(b.len(), 1);
        assert_eq!(b.blocks[0].src.len(), 4);
        assert_eq!(b.blocks[0].tgt.len(), 3);
        assert_eq!(b.ct(), 0);
        assert_eq!(b.cs(), 1); // 4 sources, 3 targets in one block
    }

    #[test]
    fn figure3_style_refinement() {
        // Refine on Type (id), Unit (const 'k $'), Org (id) — the block of
        // index ('C', 'k $', 'SAP') must hold 3 sources and 2 targets.
        let (s, t, mut pool) = tables();
        let ksym = pool.intern("k $");
        let mut scratch = ApplyScratch::new();

        let b = Blocking::root(&s, &t)
            .refine(
                AttrId(0),
                &AttrFunction::Identity,
                &mut scratch,
                &s,
                &t,
                &mut pool,
            )
            .refine(
                AttrId(2),
                &AttrFunction::Constant(ksym),
                &mut scratch,
                &s,
                &t,
                &mut pool,
            )
            .refine(
                AttrId(3),
                &AttrFunction::Identity,
                &mut scratch,
                &s,
                &t,
                &mut pool,
            );

        let mixed: Vec<&Block> = b.mixed_blocks().collect();
        assert_eq!(mixed.len(), 2);
        let sap = mixed.iter().find(|blk| blk.src.len() == 3).unwrap();
        assert_eq!(sap.tgt.len(), 2);
        assert_eq!(b.cs(), 1);
        assert_eq!(b.ct(), 0);
    }

    #[test]
    fn dead_sources_counted_in_cs() {
        let (s, t, mut pool) = tables();
        // Scaling applies to Val but not to Type — refine on Type with a
        // numeric function: every source dies.
        let f = AttrFunction::Scale(affidavit_table::Rational::new(1, 1000).unwrap());
        let b = Blocking::root(&s, &t).refine(
            AttrId(0),
            &f,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        assert_eq!(b.dead_src.len(), 4);
        assert_eq!(b.cs(), 4);
        assert_eq!(b.ct(), 3); // all targets now unmatched
    }

    #[test]
    fn indeterminacy_shrinks_with_refinement() {
        let (s, t, mut pool) = tables();
        let root = Blocking::root(&s, &t);
        let before = root.indeterminacy(AttrId(1), &s); // all 4 Val values
        assert_eq!(before, 4);
        let refined = root.refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        let after = refined.indeterminacy(AttrId(1), &s);
        assert_eq!(after, 3); // the C-block has 3 distinct Val values
    }

    #[test]
    fn refinement_order_is_deterministic() {
        let (s, t, mut pool) = tables();
        let mut scratch = ApplyScratch::new();
        let b1 = Blocking::root(&s, &t).refine(
            AttrId(3),
            &AttrFunction::Identity,
            &mut scratch,
            &s,
            &t,
            &mut pool,
        );
        let b2 = Blocking::root(&s, &t).refine(
            AttrId(3),
            &AttrFunction::Identity,
            &mut scratch,
            &s,
            &t,
            &mut pool,
        );
        let shape1: Vec<(usize, usize)> = b1
            .blocks
            .iter()
            .map(|b| (b.src.len(), b.tgt.len()))
            .collect();
        let shape2: Vec<(usize, usize)> = b2
            .blocks
            .iter()
            .map(|b| (b.src.len(), b.tgt.len()))
            .collect();
        assert_eq!(shape1, shape2);
    }
}
