//! Blocking results Φ^H (Definitions 4.3 and 4.4) with incremental
//! refinement.

use std::sync::Arc;

use affidavit_functions::{ApplyScratch, AttrFunction};
use affidavit_table::{
    AttrId, FxHashMap, FxHashSet, Interner, RecordId, ScratchPool, Sym, Table, ValuePool,
};
use rayon::prelude::*;

/// One block φ(κ): the source and target records sharing a blocking index.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Source records in the block (`φ_S(κ)`).
    pub src: Vec<RecordId>,
    /// Target records in the block (`φ_T(κ)`).
    pub tgt: Vec<RecordId>,
}

impl Block {
    /// True if the block holds both source and target records — only such
    /// blocks can contribute alignment examples.
    pub fn is_mixed(&self) -> bool {
        !self.src.is_empty() && !self.tgt.is_empty()
    }

    /// Target surplus `max(0, |φ_T| − |φ_S|)`.
    pub fn target_surplus(&self) -> u64 {
        (self.tgt.len() as u64).saturating_sub(self.src.len() as u64)
    }

    /// Source surplus `max(0, |φ_S| − |φ_T|)`.
    pub fn source_surplus(&self) -> u64 {
        (self.src.len() as u64).saturating_sub(self.tgt.len() as u64)
    }
}

/// The blocking result Φ^H of a search state.
///
/// `dead_src` holds source records on which some assigned function was
/// inapplicable (partial application returned `None`); they can never align
/// with any target under this state and count towards the `cs` lower bound.
#[derive(Debug, Clone, Default)]
pub struct Blocking {
    /// All blocks, in deterministic (parent-order, first-seen) order.
    pub blocks: Vec<Block>,
    /// Source records excluded by partial function application.
    pub dead_src: Vec<RecordId>,
}

/// Split one parent block by the transformed source value vs. the raw
/// target value of `attr`, appending the resulting sub-blocks (in
/// first-seen key order) to `out_blocks` and inapplicable sources to
/// `dead`. `groups`/`order` are caller-provided workhorse buffers (left
/// drained) so the serial path can reuse one allocation across blocks.
#[allow(clippy::too_many_arguments)]
fn split_block<I: Interner>(
    block: &Block,
    attr: AttrId,
    func: &AttrFunction,
    scratch: &mut ApplyScratch,
    source: &Table,
    target: &Table,
    pool: &mut I,
    groups: &mut FxHashMap<Sym, Block>,
    order: &mut Vec<Sym>,
    out_blocks: &mut Vec<Block>,
    dead: &mut Vec<RecordId>,
) {
    // One bounds-checked column fetch per table, then contiguous-slice
    // indexing inside the loop: the per-record apply/intern order is
    // unchanged, so pool evolution is byte-identical to the row walk.
    let src_col = source.column(attr);
    let tgt_col = target.column(attr);
    for &sid in &block.src {
        let raw = src_col[sid.index()];
        match scratch.apply(func, raw, pool) {
            Some(key) => {
                let entry = groups.entry(key).or_insert_with(|| {
                    order.push(key);
                    Block::default()
                });
                entry.src.push(sid);
            }
            None => dead.push(sid),
        }
    }
    for &tid in &block.tgt {
        let key = tgt_col[tid.index()];
        let entry = groups.entry(key).or_insert_with(|| {
            order.push(key);
            Block::default()
        });
        entry.tgt.push(tid);
    }
    for key in order.drain(..) {
        let b = groups.remove(&key).expect("key was inserted above");
        out_blocks.push(b);
    }
}

impl Blocking {
    /// The root blocking of the empty assignment `H^∅ = (∗, …, ∗)`: a
    /// single block containing every record.
    pub fn root(source: &Table, target: &Table) -> Blocking {
        Blocking {
            blocks: vec![Block {
                src: source.record_ids().collect(),
                tgt: target.record_ids().collect(),
            }],
            dead_src: Vec::new(),
        }
    }

    /// Refine on a newly assigned attribute: every block splits by the
    /// *transformed* source value vs. the raw target value of `attr`.
    ///
    /// Function application is memoized in the caller's [`ApplyScratch`]
    /// (reset on entry) and interns transformed values into `pool` — a
    /// worker passes its `ScratchPool` overlay here, so refinement never
    /// touches shared mutable state.
    pub fn refine<I: Interner>(
        &self,
        attr: AttrId,
        func: &AttrFunction,
        scratch: &mut ApplyScratch,
        source: &Table,
        target: &Table,
        pool: &mut I,
    ) -> Blocking {
        scratch.begin();
        let mut out = Blocking {
            blocks: Vec::with_capacity(self.blocks.len()),
            dead_src: self.dead_src.clone(),
        };
        // Workhorse map reused across blocks (cleared via drain).
        let mut groups: FxHashMap<Sym, Block> = FxHashMap::default();
        let mut order: Vec<Sym> = Vec::new();
        for block in &self.blocks {
            split_block(
                block,
                attr,
                func,
                scratch,
                source,
                target,
                pool,
                &mut groups,
                &mut order,
                &mut out.blocks,
                &mut out.dead_src,
            );
        }
        out
    }

    /// [`refine`](Blocking::refine), fanned out over the input blocks —
    /// the per-block lever for the paper's 500k-record instances, where a
    /// single refinement touches every live record.
    ///
    /// Each worker splits one block against its own [`ScratchPool`]
    /// overlay of the frozen pool and its own [`ApplyScratch`] memo; the
    /// driver then concatenates partitions in block order and absorbs each
    /// worker's newly interned strings in that same order, so the output
    /// blocking **and** the pool's contents are byte-identical to the
    /// serial path at every thread count (grouping keys never escape the
    /// workers — only the pool side effects need replaying).
    ///
    /// Callers gate on thread count and instance size; this method always
    /// fans out (degrading to the serial path only for trivial inputs).
    pub fn refine_parallel(
        &self,
        attr: AttrId,
        func: &AttrFunction,
        source: &Table,
        target: &Table,
        pool: &mut ValuePool,
    ) -> Blocking {
        let _span = affidavit_obs::span("blocking.refine");
        if self.blocks.len() <= 1 {
            // One block means one worker: the fan-out would only add
            // overhead on the already-hot path.
            return self.refine(attr, func, &mut ApplyScratch::new(), source, target, pool);
        }
        struct BlockSplit {
            blocks: Vec<Block>,
            dead: Vec<RecordId>,
            base_len: usize,
            new_strings: Vec<Arc<str>>,
        }
        // One contiguous chunk of blocks per worker (not one block per work
        // item): each chunk shares a single scratch overlay, apply memo and
        // grouping buffers, preserving the serial path's cross-block memo
        // hits within a chunk.
        let threads = rayon::current_num_threads().max(1);
        let chunk_size = self.blocks.len().div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..self.blocks.len())
            .step_by(chunk_size)
            .map(|lo| (lo, (lo + chunk_size).min(self.blocks.len())))
            .collect();
        let splits: Vec<BlockSplit> = {
            let reader = pool.reader();
            ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut ws = ScratchPool::new(reader);
                    let mut scratch = ApplyScratch::new();
                    scratch.begin();
                    let mut groups: FxHashMap<Sym, Block> = FxHashMap::default();
                    let mut order: Vec<Sym> = Vec::new();
                    let mut blocks = Vec::new();
                    let mut dead = Vec::new();
                    for block in &self.blocks[lo..hi] {
                        split_block(
                            block,
                            attr,
                            func,
                            &mut scratch,
                            source,
                            target,
                            &mut ws,
                            &mut groups,
                            &mut order,
                            &mut blocks,
                            &mut dead,
                        );
                    }
                    BlockSplit {
                        blocks,
                        dead,
                        base_len: ws.base_len(),
                        new_strings: ws.take_new_strings(),
                    }
                })
                .collect()
        };
        let mut out = Blocking {
            blocks: Vec::with_capacity(self.blocks.len()),
            dead_src: self.dead_src.clone(),
        };
        for split in splits {
            // Replay the pool side effect in block order: the serial path
            // interns every transformed source value as it groups, and
            // later symbol assignment must not depend on which path ran.
            let _ = pool.absorb(split.base_len, &split.new_strings);
            out.blocks.extend(split.blocks);
            out.dead_src.extend(split.dead);
        }
        out
    }

    /// Lower bound on inserted targets from this blocking alone:
    /// `ct(H) = Σ_{|φ_T| > |φ_S|} (|φ_T| − |φ_S|)` (§4.5).
    pub fn ct(&self) -> u64 {
        self.blocks.iter().map(Block::target_surplus).sum()
    }

    /// Lower bound on deleted sources:
    /// `cs(H) = Σ_{|φ_S| > |φ_T|} (|φ_S| − |φ_T|)` plus the dead sources.
    pub fn cs(&self) -> u64 {
        let surplus: u64 = self.blocks.iter().map(Block::source_surplus).sum();
        surplus + self.dead_src.len() as u64
    }

    /// Iterate over the mixed blocks (both sides non-empty).
    pub fn mixed_blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(|b| b.is_mixed())
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Indeterminacy estimate of an attribute under this blocking (§4.3):
    /// the maximum number of distinct *source* values of `attr` over all
    /// mixed blocks — an upper bound for how many source values compete as
    /// the origin of a target value.
    pub fn indeterminacy(&self, attr: AttrId, source: &Table) -> usize {
        let mut distinct: FxHashSet<Sym> = FxHashSet::default();
        let mut max = 0usize;
        for block in self.mixed_blocks() {
            distinct.clear();
            for &sid in &block.src {
                distinct.insert(source.value(sid, attr));
            }
            max = max.max(distinct.len());
        }
        max
    }

    /// Total number of source records still inside blocks (excludes dead).
    pub fn live_sources(&self) -> usize {
        self.blocks.iter().map(|b| b.src.len()).sum()
    }

    /// Total number of target records (always all of T).
    pub fn total_targets(&self) -> usize {
        self.blocks.iter().map(|b| b.tgt.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, ValuePool};

    fn tables() -> (Table, Table, ValuePool) {
        let mut pool = ValuePool::new();
        // Mirrors the spirit of Figure 3: Type / Val / Unit / Org.
        let s = Table::from_rows(
            Schema::new(["Type", "Val", "Unit", "Org"]),
            &mut pool,
            vec![
                vec!["C", "6540", "USD", "SAP"],
                vec!["C", "9800", "USD", "SAP"],
                vec!["C", "0", "USD", "SAP"],
                vec!["A", "80000", "USD", "IBM"],
            ],
        );
        let t = Table::from_rows(
            Schema::new(["Type", "Val", "Unit", "Org"]),
            &mut pool,
            vec![
                vec!["C", "9.8", "k $", "SAP"],
                vec!["C", "6.54", "k $", "SAP"],
                vec!["A", "80", "k $", "IBM"],
            ],
        );
        (s, t, pool)
    }

    #[test]
    fn root_has_single_block() {
        let (s, t, _) = tables();
        let b = Blocking::root(&s, &t);
        assert_eq!(b.len(), 1);
        assert_eq!(b.blocks[0].src.len(), 4);
        assert_eq!(b.blocks[0].tgt.len(), 3);
        assert_eq!(b.ct(), 0);
        assert_eq!(b.cs(), 1); // 4 sources, 3 targets in one block
    }

    #[test]
    fn figure3_style_refinement() {
        // Refine on Type (id), Unit (const 'k $'), Org (id) — the block of
        // index ('C', 'k $', 'SAP') must hold 3 sources and 2 targets.
        let (s, t, mut pool) = tables();
        let ksym = pool.intern("k $");
        let mut scratch = ApplyScratch::new();

        let b = Blocking::root(&s, &t)
            .refine(
                AttrId(0),
                &AttrFunction::Identity,
                &mut scratch,
                &s,
                &t,
                &mut pool,
            )
            .refine(
                AttrId(2),
                &AttrFunction::Constant(ksym),
                &mut scratch,
                &s,
                &t,
                &mut pool,
            )
            .refine(
                AttrId(3),
                &AttrFunction::Identity,
                &mut scratch,
                &s,
                &t,
                &mut pool,
            );

        let mixed: Vec<&Block> = b.mixed_blocks().collect();
        assert_eq!(mixed.len(), 2);
        let sap = mixed.iter().find(|blk| blk.src.len() == 3).unwrap();
        assert_eq!(sap.tgt.len(), 2);
        assert_eq!(b.cs(), 1);
        assert_eq!(b.ct(), 0);
    }

    #[test]
    fn dead_sources_counted_in_cs() {
        let (s, t, mut pool) = tables();
        // Scaling applies to Val but not to Type — refine on Type with a
        // numeric function: every source dies.
        let f = AttrFunction::Scale(affidavit_table::Rational::new(1, 1000).unwrap());
        let b = Blocking::root(&s, &t).refine(
            AttrId(0),
            &f,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        assert_eq!(b.dead_src.len(), 4);
        assert_eq!(b.cs(), 4);
        assert_eq!(b.ct(), 3); // all targets now unmatched
    }

    #[test]
    fn indeterminacy_shrinks_with_refinement() {
        let (s, t, mut pool) = tables();
        let root = Blocking::root(&s, &t);
        let before = root.indeterminacy(AttrId(1), &s); // all 4 Val values
        assert_eq!(before, 4);
        let refined = root.refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        let after = refined.indeterminacy(AttrId(1), &s);
        assert_eq!(after, 3); // the C-block has 3 distinct Val values
    }

    /// `(per-block (src, tgt) record lists, dead sources)` — the exact
    /// observable content of a blocking.
    type ExactBlocking = (Vec<(Vec<RecordId>, Vec<RecordId>)>, Vec<RecordId>);

    /// Exact comparison of two blockings: block order, record order within
    /// blocks, and dead-source order all included.
    fn exact(b: &Blocking) -> ExactBlocking {
        (
            b.blocks
                .iter()
                .map(|blk| (blk.src.clone(), blk.tgt.clone()))
                .collect(),
            b.dead_src.clone(),
        )
    }

    fn assert_parallel_matches_serial(base: &Blocking, s: &Table, t: &Table, pool: &ValuePool) {
        for func in [
            AttrFunction::Identity,
            AttrFunction::Scale(affidavit_table::Rational::new(1, 1000).unwrap()),
        ] {
            for attr in [0u32, 1] {
                let mut serial_pool = pool.clone();
                let serial = base.refine(
                    AttrId(attr),
                    &func,
                    &mut ApplyScratch::new(),
                    s,
                    t,
                    &mut serial_pool,
                );
                for threads in [1usize, 2, 4, 8] {
                    let mut par_pool = pool.clone();
                    let pool_handle = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    let parallel = pool_handle
                        .install(|| base.refine_parallel(AttrId(attr), &func, s, t, &mut par_pool));
                    assert_eq!(
                        exact(&serial),
                        exact(&parallel),
                        "attr {attr} func {func:?} threads {threads}"
                    );
                    // Pool side-effect parity: identical contents in
                    // identical order, so downstream symbol numbering can
                    // never depend on which refine path ran.
                    let serial_strings: Vec<&str> = serial_pool.iter().map(|(_, v)| v).collect();
                    let par_strings: Vec<&str> = par_pool.iter().map(|(_, v)| v).collect();
                    assert_eq!(serial_strings, par_strings, "pool diverged");
                }
            }
        }
    }

    #[test]
    fn parallel_refine_matches_serial_on_figure3_tables() {
        let (s, t, mut pool) = tables();
        let base = Blocking::root(&s, &t).refine(
            AttrId(0),
            &AttrFunction::Identity,
            &mut ApplyScratch::new(),
            &s,
            &t,
            &mut pool,
        );
        assert!(base.len() > 1, "fan-out path needs several blocks");
        assert_parallel_matches_serial(&base, &s, &t, &pool);
    }

    #[test]
    fn parallel_refine_handles_adversarial_block_shapes() {
        let (s, t, pool) = tables();
        // Empty blocks, source-only and target-only blocks interleaved
        // with a giant mixed block — shapes the search itself produces
        // only in corner cases.
        let adversarial = Blocking {
            blocks: vec![
                Block::default(),
                Block {
                    src: s.record_ids().collect(),
                    tgt: t.record_ids().collect(),
                },
                Block::default(),
                Block {
                    src: s.record_ids().take(2).collect(),
                    tgt: Vec::new(),
                },
                Block {
                    src: Vec::new(),
                    tgt: t.record_ids().take(1).collect(),
                },
            ],
            dead_src: vec![affidavit_table::RecordId(3)],
        };
        assert_parallel_matches_serial(&adversarial, &s, &t, &pool);
        // All-singleton blocks: every record alone.
        let singletons = Blocking {
            blocks: s
                .record_ids()
                .map(|sid| Block {
                    src: vec![sid],
                    tgt: Vec::new(),
                })
                .chain(t.record_ids().map(|tid| Block {
                    src: Vec::new(),
                    tgt: vec![tid],
                }))
                .collect(),
            dead_src: Vec::new(),
        };
        assert_parallel_matches_serial(&singletons, &s, &t, &pool);
    }

    #[test]
    fn refinement_order_is_deterministic() {
        let (s, t, mut pool) = tables();
        let mut scratch = ApplyScratch::new();
        let b1 = Blocking::root(&s, &t).refine(
            AttrId(3),
            &AttrFunction::Identity,
            &mut scratch,
            &s,
            &t,
            &mut pool,
        );
        let b2 = Blocking::root(&s, &t).refine(
            AttrId(3),
            &AttrFunction::Identity,
            &mut scratch,
            &s,
            &t,
            &mut pool,
        );
        let shape1: Vec<(usize, usize)> = b1
            .blocks
            .iter()
            .map(|b| (b.src.len(), b.tgt.len()))
            .collect();
        let shape2: Vec<(usize, usize)> = b2
            .blocks
            .iter()
            .map(|b| (b.src.len(), b.tgt.len()))
            .collect();
        assert_eq!(shape1, shape2);
    }
}
