//! Overlap-score a-priori matching — the `Hs` initialization strategy
//! (§4.2).
//!
//! Each attribute is independently assumed unchanged; records that share a
//! value on some attribute score +1 per shared attribute. For every source
//! record, the highest-scoring target record forms an a-priori alignment
//! pair. Attributes are then ranked by how often their values agree on
//! those pairs, and the `k'` most frequently agreeing ones (where `k'` is
//! the mode of the pair overlap scores) are assigned `id` in the start
//! state.
//!
//! To avoid a quadratic record comparison, scores are only accumulated for
//! pairs that share at least one value, and a value is skipped entirely when
//! it would generate more than `max_pairs_per_value` pairs — precisely the
//! behaviour that makes `Hs` collapse on low-distinctness tables like
//! *chess* or *nursery* in Table 2 (every informative value is too frequent,
//! leaving only the misleading artificial primary key).

use affidavit_table::{AttrId, FxHashMap, RecordId, Sym, Table};

/// Configuration of the overlap matcher.
#[derive(Debug, Clone, Copy)]
pub struct OverlapConfig {
    /// Skip values whose source×target pair count exceeds this bound
    /// (paper default: 100 000).
    pub max_pairs_per_value: usize,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            max_pairs_per_value: 100_000,
        }
    }
}

/// Compute the attribute set `A_id` for the `Hs` start state. The returned
/// attributes should be assigned `id`; an empty result means no informative
/// overlap was found (the caller falls back to `H^∅` semantics).
pub fn overlap_start_attrs(source: &Table, target: &Table, cfg: OverlapConfig) -> Vec<AttrId> {
    let arity = source.schema().arity();
    if source.is_empty() || target.is_empty() || arity == 0 {
        return Vec::new();
    }

    // Per attribute: value -> target records carrying it.
    // Score accumulation: (source record -> (target record -> score)).
    let mut scores: FxHashMap<RecordId, FxHashMap<RecordId, u32>> = FxHashMap::default();
    let mut tgt_index: FxHashMap<Sym, Vec<RecordId>> = FxHashMap::default();
    let mut src_count: FxHashMap<Sym, usize> = FxHashMap::default();

    for a in 0..arity {
        let attr = AttrId(a as u32);
        tgt_index.clear();
        src_count.clear();
        // One contiguous column slice per table and attribute; record ids
        // are the slice positions, so iteration order (and with it every
        // downstream tie-break) is unchanged.
        let src_col = source.column(attr);
        let tgt_col = target.column(attr);
        for (t, &v) in tgt_col.iter().enumerate() {
            tgt_index.entry(v).or_default().push(RecordId(t as u32));
        }
        for &v in src_col {
            *src_count.entry(v).or_default() += 1;
        }
        for (i, &v) in src_col.iter().enumerate() {
            let sid = RecordId(i as u32);
            let Some(tids) = tgt_index.get(&v) else {
                continue;
            };
            let n_pairs = src_count.get(&v).copied().unwrap_or(0) * tids.len();
            if n_pairs > cfg.max_pairs_per_value {
                continue; // too frequent to be informative
            }
            let entry = scores.entry(sid).or_default();
            for &tid in tids {
                *entry.entry(tid).or_default() += 1;
            }
        }
    }

    // Best target per source record (ties towards the smaller record id for
    // determinism), forming the a-priori alignment.
    let mut pairs: Vec<(RecordId, RecordId, u32)> = Vec::with_capacity(scores.len());
    for (sid, tmap) in &scores {
        let best = tmap
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(tid, score)| (*tid, *score))
            .expect("score map entries are non-empty");
        pairs.push((*sid, best.0, best.1));
    }
    if pairs.is_empty() {
        return Vec::new();
    }

    // k' = the most frequent overlap score among the chosen pairs.
    let mut score_freq: FxHashMap<u32, usize> = FxHashMap::default();
    for &(_, _, score) in &pairs {
        *score_freq.entry(score).or_default() += 1;
    }
    let k_prime = score_freq
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)))
        .map(|(score, _)| *score as usize)
        .unwrap_or(0);
    if k_prime == 0 {
        return Vec::new();
    }

    // Rank attributes by how often their values agree on the pairs.
    let mut agree = vec![0usize; arity];
    #[allow(clippy::needless_range_loop)] // `a` also builds the AttrId
    for a in 0..arity {
        let attr = AttrId(a as u32);
        let src_col = source.column(attr);
        let tgt_col = target.column(attr);
        for &(sid, tid, _) in &pairs {
            if src_col[sid.index()] == tgt_col[tid.index()] {
                agree[a] += 1;
            }
        }
    }
    let mut ranked: Vec<(usize, usize)> = agree.iter().copied().enumerate().collect();
    // Sort by agreement count descending, attribute index ascending.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(k_prime.min(arity))
        .filter(|&(_, count)| count > 0)
        .map(|(a, _)| AttrId(a as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use affidavit_table::{Schema, ValuePool};

    /// Three attributes: k1/k2 unchanged, v transformed; the matcher should
    /// pick (a subset of) {k1, k2}.
    #[test]
    fn picks_unchanged_attributes() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["k1", "k2", "v"]),
            &mut pool,
            vec![
                vec!["a", "x", "1"],
                vec!["b", "y", "2"],
                vec!["c", "z", "3"],
            ],
        );
        let t = Table::from_rows(
            Schema::new(["k1", "k2", "v"]),
            &mut pool,
            vec![
                vec!["a", "x", "100"],
                vec!["b", "y", "200"],
                vec!["c", "z", "300"],
            ],
        );
        let attrs = overlap_start_attrs(&s, &t, OverlapConfig::default());
        assert!(!attrs.is_empty());
        assert!(attrs.iter().all(|a| a.0 < 2), "must not pick v: {attrs:?}");
        // Score of every correct pair is 2 (k1+k2 agree) → k' = 2.
        assert_eq!(attrs.len(), 2);
    }

    /// Low-distinctness attributes exceed the pair budget; the only value
    /// small enough to pair on is a permuted unique key, which aligns
    /// records *wrongly* — reproducing the `Hs` failure mode of Table 2.
    #[test]
    fn frequent_values_are_skipped() {
        let mut pool = ValuePool::new();
        let cat = |i: usize| if i.is_multiple_of(2) { "x" } else { "y" };
        let rows_s: Vec<Vec<String>> = (0..20)
            .map(|i| vec![cat(i).to_owned(), format!("{i}")])
            .collect();
        // Target row j carries pk (j + 7) % 20, so the pk pairing matches
        // source i with target position (i + 13) % 20 — an odd shift that
        // never agrees on the alternating category attribute.
        let rows_t: Vec<Vec<String>> = (0..20)
            .map(|j| vec![cat(j).to_owned(), format!("{}", (j + 7) % 20)])
            .collect();
        let s = Table::from_rows(Schema::new(["cat", "pk"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["cat", "pk"]), &mut pool, rows_t);
        let attrs = overlap_start_attrs(
            &s,
            &t,
            OverlapConfig {
                max_pairs_per_value: 50,
            },
        );
        // Each 'cat' value generates 10×10 = 100 pairs > 50 and is skipped;
        // the pairs come from the (misleading) permuted pk, on which no
        // category value agrees — so only pk is chosen.
        assert_eq!(attrs, vec![AttrId(1)]);
    }

    #[test]
    fn empty_tables_yield_no_attrs() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, Vec::<Vec<&str>>::new());
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["x"]]);
        assert!(overlap_start_attrs(&s, &t, OverlapConfig::default()).is_empty());
    }

    #[test]
    fn no_shared_values_yields_no_attrs() {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["x"], vec!["y"]]);
        let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["p"], vec!["q"]]);
        assert!(overlap_start_attrs(&s, &t, OverlapConfig::default()).is_empty());
    }
}
