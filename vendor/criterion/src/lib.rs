//! Offline shim of `criterion`.
//!
//! Provides the measurement surface the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! `criterion_group!`/`criterion_main!` and [`Bencher::iter`] — with a
//! simple mean-of-N wall-clock measurement loop instead of criterion's
//! statistical machinery. Good enough for before/after comparisons in an
//! offline environment; not a replacement for real criterion numbers.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, timing each run.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = sorted[sorted.len() / 2];
    let mut line = format!(
        "{name:<40} mean {mean:>12.3?}  median {median:>12.3?}  n={}",
        samples.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("  ({eps:.0} elem/s)"));
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the conventional CLI filter argument (`cargo bench -- substring`).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => name.contains(f.as_str()),
        }
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: String::new(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        };
        group.run(name.to_string(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            label
        } else {
            format!("{}/{}", self.name, label)
        };
        if !self.criterion.enabled(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
    }

    /// Benchmark one closure under an id.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark one closure with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (report separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
