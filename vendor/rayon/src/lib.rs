//! Offline shim of `rayon`.
//!
//! Implements the subset of the rayon API this workspace uses — parallel
//! iterators over slices, vectors and ranges with `map`/`collect`, plus
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`] — on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! thread; ordering of results is always preserved, so any pipeline that
//! merges results in input order behaves identically at every thread
//! count.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| match c.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Error building a thread pool (the shim never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the thread count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: in this shim, a thread-count scope. Threads are
/// spawned per parallel call (scoped), not kept alive — adequate for the
/// workspace's coarse-grained fan-outs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing all parallel
    /// iterators invoked inside it. The previous count is restored even
    /// if `op` unwinds.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(Some(self.num_threads));
            Restore(prev)
        });
        op()
    }
}

/// Split `items` into one chunk per thread and map them concurrently,
/// preserving input order in the result.
fn execute<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each element through `f` (executed on `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Execute the parallel map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(execute(self.items, self.f))
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;

    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! The traits a `use rayon::prelude::*` is expected to bring in.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
