//! Offline shim of `rayon`.
//!
//! Implements the subset of the rayon API this workspace uses — parallel
//! iterators over slices, vectors and ranges with `map`/`collect`, plus
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`]. Work is split into one
//! contiguous chunk per thread; ordering of results is always preserved,
//! so any pipeline that merges results in input order behaves identically
//! at every thread count.
//!
//! # Persistent, channel-fed pools
//!
//! [`ThreadPoolBuilder::build`] spawns its workers **once**; every parallel
//! collect executed under [`ThreadPool::install`] hands chunk jobs to
//! those resident workers over an mpsc channel and waits on a latch.
//! Per-iteration fan-outs (the search driver expands frontier states many
//! thousands of times per solve) therefore stop paying thread spawn/join
//! costs. Outside an `install` scope, parallel iterators fall back to
//! scoped one-shot threads — adequate for coarse fan-outs like
//! whole-snapshot profiling that parallelize once per run.
//!
//! Worker threads run *nested* parallel iterators inline (their
//! [`current_num_threads`] is pinned to 1): the work inside a chunk job is
//! already one slice of a fan-out, so splitting it again would only
//! oversubscribe — and routing nested jobs into the same queue the workers
//! are draining could deadlock. Results are unaffected either way.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static CURRENT_POOL: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
}

/// The number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| match c.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Error building a thread pool (the shim never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the thread count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool, spawning its resident worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..n)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker")
            })
            .collect();
        Ok(ThreadPool {
            num_threads: n,
            inner: Arc::new(PoolInner {
                sender: Mutex::new(Some(sender)),
            }),
            workers,
        })
    }
}

/// A boxed chunk job handed to a resident worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The channel half of a pool, shared with `install` scopes.
#[derive(Debug)]
struct PoolInner {
    /// `None` once the owning [`ThreadPool`] began shutdown.
    sender: Mutex<Option<Sender<Job>>>,
}

impl PoolInner {
    /// Queue a job; returns it back if the pool is already shut down.
    fn submit(&self, job: Job) -> Result<(), Job> {
        let guard = self.sender.lock().expect("pool sender lock");
        match guard.as_ref() {
            Some(sender) => sender.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }
}

/// Resident worker body: drain jobs until the channel closes. Nested
/// parallel iterators inside a job run inline (thread count pinned to 1).
fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    CURRENT_THREADS.with(|c| c.set(Some(1)));
    loop {
        // Take the next job while holding the lock, then release it before
        // running so siblings can pick up the remaining jobs.
        let job = match receiver.lock().expect("pool receiver lock").recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        job();
    }
}

/// A persistent thread pool: `num_threads` resident workers fed over a
/// channel. Dropping the pool closes the channel and joins the workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
    inner: Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's workers executing all parallel iterators
    /// invoked inside it. The previous configuration is restored even if
    /// `op` unwinds.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>, Option<Arc<PoolInner>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
                CURRENT_POOL.with(|p| *p.borrow_mut() = self.1.take());
            }
        }
        let prev_threads = CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(Some(self.num_threads));
            prev
        });
        let prev_pool = CURRENT_POOL.with(|p| p.borrow_mut().replace(Arc::clone(&self.inner)));
        let _restore = Restore(prev_threads, prev_pool);
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        *self.inner.sender.lock().expect("pool sender lock") = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion latch for one fan-out: the submitting thread waits until
/// every chunk job has run; a job that panicked poisons the latch.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(jobs: usize) -> Latch {
        Latch {
            remaining: Mutex::new(jobs),
            all_done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn done(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining).expect("latch wait");
        }
    }
}

/// Raw pointer wrapper so a job can write its result slot from a worker.
/// Safe because slots are disjoint per job and the submitter does not read
/// them until the latch confirms every job finished.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}

/// Split `items` into one chunk per thread and map them concurrently,
/// preserving input order in the result.
fn execute<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = chunked(items, threads);
    let pool = CURRENT_POOL.with(|p| p.borrow().clone());
    match pool {
        Some(pool) => execute_pooled(&pool, chunks, &f),
        None => execute_scoped(chunks, &f),
    }
}

/// Partition `items` into at most `threads` contiguous chunks.
fn chunked<T>(items: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Fan chunks out to the resident workers of `pool` and wait on a latch.
fn execute_pooled<T: Send, R: Send, F: Fn(T) -> R + Sync>(
    pool: &PoolInner,
    chunks: Vec<Vec<T>>,
    f: &F,
) -> Vec<R> {
    let jobs = chunks.len();
    let latch = Arc::new(Latch::new(jobs));
    let mut slots: Vec<Option<Vec<R>>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for (slot, chunk) in slots.iter_mut().zip(chunks) {
        let slot = SendPtr(slot as *mut Option<Vec<R>>);
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            // Bind the wrapper itself, not its pointer field: 2021-edition
            // disjoint capture would otherwise move the raw (non-Send)
            // pointer into the closure.
            let slot = slot;
            // catch_unwind guarantees the latch fires even when the mapped
            // function panics, so the submitter can never deadlock.
            match catch_unwind(AssertUnwindSafe(|| {
                chunk.into_iter().map(f).collect::<Vec<R>>()
            })) {
                Ok(results) => unsafe { *slot.0 = Some(results) },
                Err(_) => latch.poisoned.store(true, Ordering::SeqCst),
            }
            latch.done();
        });
        // SAFETY: the job borrows `f` and the result slots from this stack
        // frame; `latch.wait()` below blocks until every job has completed,
        // so those borrows are live for as long as any worker can use them.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        // A closed pool (owner mid-drop) degrades to inline execution.
        if let Err(job) = pool.submit(job) {
            job();
        }
    }
    latch.wait();
    if latch.poisoned.load(Ordering::SeqCst) {
        panic!("parallel worker panicked");
    }
    slots
        .into_iter()
        .flat_map(|s| s.expect("every finished job filled its slot"))
        .collect()
}

/// One-shot scoped-thread fallback for fan-outs outside any `install`.
fn execute_scoped<T: Send, R: Send, F: Fn(T) -> R + Sync>(chunks: Vec<Vec<T>>, f: &F) -> Vec<R> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    // One-shot workers also run nested fan-outs inline.
                    CURRENT_THREADS.with(|c| c.set(Some(1)));
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each element through `f` (executed on `collect`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Execute the parallel map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(execute(self.items, self.f))
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;

    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! The traits a `use rayon::prelude::*` is expected to bring in.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn pool_workers_are_reused_across_fanouts() {
        // A persistent pool serves many successive collects without
        // respawning; worker thread ids repeat across iterations.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut all_ids = std::collections::HashSet::new();
        pool.install(|| {
            for round in 0..50 {
                let ids: Vec<std::thread::ThreadId> = (0..4)
                    .into_par_iter()
                    .map(|_| std::thread::current().id())
                    .collect();
                for id in ids {
                    all_ids.insert(id);
                }
                let got: Vec<usize> = (0..10).into_par_iter().map(|i| i + round).collect();
                assert_eq!(got, (0..10).map(|i| i + round).collect::<Vec<_>>());
            }
        });
        // 100 fan-outs over exactly 2 resident workers (the submitting
        // thread never executes pooled jobs).
        assert!(all_ids.len() <= 2, "workers respawned: {}", all_ids.len());
    }

    #[test]
    fn nested_fanouts_run_inline_in_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested_counts: Vec<usize> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            nested_counts.iter().all(|&n| n == 1),
            "nested fan-outs must be inline: {nested_counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn pooled_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let _: Vec<usize> = (0..8)
                .into_par_iter()
                .map(|i| if i == 5 { panic!("boom") } else { i })
                .collect();
        });
    }

    #[test]
    fn pool_survives_a_panicked_fanout() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                let _: Vec<usize> = (0..8)
                    .into_par_iter()
                    .map(|i| if i == 3 { panic!("boom") } else { i })
                    .collect();
            });
        }));
        assert!(result.is_err());
        // The workers caught the unwind; the pool still serves jobs.
        let got: Vec<usize> = pool.install(|| (0..6).into_par_iter().map(|i| i * 3).collect());
        assert_eq!(got, vec![0, 3, 6, 9, 12, 15]);
    }
}
