//! Offline shim of `serde`.
//!
//! Instead of upstream serde's visitor-based zero-copy architecture, this
//! shim uses a simple tree data model ([`Value`]) — more than enough for
//! the workspace's JSON round-tripping of explanations, profiles and
//! configurations. The derive macros in the sibling `serde_derive` shim
//! generate [`Serialize`]/[`Deserialize`] impls against this model, and
//! the `serde_json` shim renders/parses the tree.
//!
//! Supported container attributes (the subset this workspace uses):
//! `#[serde(tag = "...")]`, `#[serde(untagged)]`,
//! `#[serde(rename_all = "snake_case")]`.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style number: integer forms are kept exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            Number::Float(_) => None,
        }
    }
}

/// The serde shim's data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// The canonical `null`, usable where a `&Value` is needed.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up a field in an object slice; missing fields read as `null` (so
/// `Option<T>` fields deserialize to `None`).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the shim data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- impls for std types -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected character, found {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single character, found {s:?}"
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(format!("expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Num(Number::NegInt(n))
                } else {
                    Value::Num(Number::PosInt(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(format!("expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::custom(format!("expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<(A, B, C), Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected three-element array")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
