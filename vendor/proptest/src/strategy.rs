//! The [`Strategy`] trait and basic combinators.

use std::rc::Rc;

use rand::Rng;

use crate::TestRng;

/// A generator of values of one type. Unlike upstream proptest there is no
/// shrinking: a strategy is just a cloneable recipe for random values.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategies from regex-like patterns (the proptest convention
/// that `&str` *is* a strategy).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A type-erased strategy, used by `prop_oneof!` to mix heterogeneous
/// strategy types with a common value type.
pub type DynStrategy<T> = Rc<dyn Fn(&mut TestRng) -> T>;

/// Erase a strategy's concrete type.
pub fn dynamic<S: Strategy + 'static>(s: S) -> DynStrategy<S::Value> {
    Rc::new(move |rng| s.generate(rng))
}

/// Uniform choice among several strategies of one value type.
pub struct Union<T> {
    options: Vec<DynStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the erased options (used by `prop_oneof!`).
    pub fn new(options: Vec<DynStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        (self.options[i])(rng)
    }
}
