//! Offline shim of `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait, regex-string strategies, numeric
//! range strategies, [`Just`](strategy::Just), `prop_oneof!`, tuple/array/vec composition,
//! and the `proptest!` test macro. No shrinking — a failing case panics
//! with the generated inputs left in the assertion message.
//!
//! Case count defaults to 32 per property and can be raised with the
//! `PROPTEST_CASES` environment variable.

pub mod regex;
pub mod strategy;
pub mod test_runner;

/// Number of cases each property runs.
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// The RNG driving generation.
pub type TestRng = rand::rngs::StdRng;

/// Build the deterministic RNG for one property function, salted with
/// the property's full name so distinct properties draw distinct case
/// streams.
pub fn new_rng(name: &str) -> TestRng {
    use rand::SeedableRng;
    // FNV-1a over the name; good enough to decorrelate test streams.
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::Rng;

    /// Anything that can act as a size specification for [`vec()`].
    pub trait SizeRange: Clone {
        /// Draw a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element, size)` — a vector whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Strategy for `[S::Value; N]`.
    #[derive(Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// A 2-element array of independently generated values.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray { element }
    }

    /// A 3-element array of independently generated values.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Module-style access (`prop::collection::vec`, …).
        pub use crate::array;
        pub use crate::collection;
    }
}

#[macro_export]
/// Run each property in the block `num_cases()` times with fresh inputs.
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let mut rng = $crate::new_rng(stringify!($name));
            for _case in 0..$crate::num_cases() {
                $(let $pat = ($strat).generate(&mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[macro_export]
/// Assert within a property (no shrinking in the shim: plain `assert!`).
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
/// Assert equality within a property.
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
/// Choose uniformly among the listed strategies (all of one value type).
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::dynamic($strat)),+])
    };
}
