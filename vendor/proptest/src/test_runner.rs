//! Minimal test-runner types (the shim has no shrinking machinery).

/// A failed test case, produced by `TestCaseError::fail` or an early
/// `return Err(...)` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
