//! A tiny regex-driven string *generator* (not a matcher).
//!
//! Supports the subset of regex syntax the workspace's property tests use
//! as string strategies: literals, escapes, `.`, character classes with
//! ranges (`[a-zäöü0-9,"\n]`), groups with alternation (`(\+|-)`), and the
//! quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`. Unbounded quantifiers are
//! capped at 8 repetitions.

use rand::Rng;

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// Characters `.` draws from — printable ASCII plus a little unicode.
const ANY: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '_', '-', '.', ',', ';', '!', '#',
    'ä', 'ß', '東',
];

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Any,
    Class(Vec<(char, char)>),
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl Parser<'_> {
    fn fail(&self, why: &str) -> ! {
        panic!("proptest shim: unsupported regex {:?}: {why}", self.pattern)
    }

    /// Parse a `|`-separated list of sequences, up to `end` (or EOF).
    fn parse_alternatives(&mut self, in_group: bool) -> Vec<Vec<Node>> {
        let mut alts = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => {
                    if in_group {
                        self.fail("unterminated group");
                    }
                    return alts;
                }
                Some(')') if in_group => {
                    self.chars.next();
                    return alts;
                }
                Some(')') => self.fail("unbalanced ')'"),
                Some('|') => {
                    self.chars.next();
                    alts.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let node = self.parse_quantifier(atom);
                    alts.last_mut().expect("non-empty").push(node);
                }
            }
        }
    }

    fn parse_atom(&mut self) -> Node {
        let c = self.chars.next().expect("peeked");
        match c {
            '.' => Node::Any,
            '(' => Node::Group(self.parse_alternatives(true)),
            '[' => self.parse_class(),
            '\\' => {
                let e = self
                    .chars
                    .next()
                    .unwrap_or_else(|| self.fail("dangling escape"));
                Node::Literal(unescape(e))
            }
            '*' | '+' | '?' | '{' => self.fail("quantifier without atom"),
            c => Node::Literal(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut members: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = self
                .chars
                .next()
                .unwrap_or_else(|| self.fail("unterminated class"));
            match c {
                ']' => {
                    if let Some(p) = pending {
                        members.push((p, p));
                    }
                    if members.is_empty() {
                        self.fail("empty character class");
                    }
                    return Node::Class(members);
                }
                '\\' => {
                    let e = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.fail("dangling escape"));
                    if let Some(p) = pending.replace(unescape(e)) {
                        members.push((p, p));
                    }
                }
                '-' if pending.is_some() && self.chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked");
                    let hi = self.chars.next().expect("peeked");
                    if (hi as u32) < lo as u32 {
                        self.fail("inverted class range");
                    }
                    members.push((lo, hi));
                }
                c => {
                    if let Some(p) = pending.replace(c) {
                        members.push((p, p));
                    }
                }
            }
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek().copied() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.fail("unterminated quantifier"),
                    }
                }
                let (lo, hi) = match spec.split_once(',') {
                    None => {
                        let n: u32 = spec.parse().unwrap_or_else(|_| self.fail("bad quantifier"));
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo: u32 = lo.parse().unwrap_or_else(|_| self.fail("bad quantifier"));
                        let hi: u32 = if hi.is_empty() {
                            lo.max(UNBOUNDED_CAP)
                        } else {
                            hi.parse().unwrap_or_else(|_| self.fail("bad quantifier"))
                        };
                        (lo, hi)
                    }
                };
                if hi < lo {
                    self.fail("inverted quantifier");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Any => out.push(ANY[rng.gen_range(0..ANY.len())]),
        Node::Class(members) => {
            let (lo, hi) = members[rng.gen_range(0..members.len())];
            let c = char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                .expect("class ranges stay inside valid scalar values");
            out.push(c);
        }
        Node::Group(alts) => {
            let alt = &alts[rng.gen_range(0..alts.len())];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
        pattern,
    };
    let alts = parser.parse_alternatives(false);
    let mut out = String::new();
    let alt = &alts[rng.gen_range(0..alts.len())];
    for node in alt {
        emit(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::new_rng;

    fn check(pattern: &str, verify: impl Fn(&str) -> bool) {
        let mut rng = new_rng("regex-tests");
        for _ in 0..200 {
            let s = generate(pattern, &mut rng);
            assert!(verify(&s), "pattern {pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn numeric_patterns() {
        check("(\\+|-)?[0-9]{1,10}", |s| {
            let body = s.strip_prefix(['+', '-']).unwrap_or(s);
            (1..=10).contains(&body.chars().count()) && body.chars().all(|c| c.is_ascii_digit())
        });
        check("[0-9]{1,6}\\.[0-9]{1,4}", |s| {
            let (a, b) = s.split_once('.').expect("dot");
            !a.is_empty() && !b.is_empty()
        });
    }

    #[test]
    fn grouped_repeats() {
        check("[0-9]{1,3}(,[0-9]{3}){1,3}", |s| {
            s.split(',').count() >= 2 && s.split(',').skip(1).all(|g| g.len() == 3)
        });
    }

    #[test]
    fn classes_and_unicode() {
        check("[a-zäöüß]{1,6}", |s| {
            (1..=6).contains(&s.chars().count())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || "äöüß".contains(c))
        });
        check("[äöü東京a-z]{0,5}", |s| s.chars().count() <= 5);
    }

    #[test]
    fn optional_and_star() {
        check("[A-Z]{1,3}-?[0-9]{1,5}", |s| {
            s.chars().any(|c| c.is_ascii_digit())
        });
        check("\".*\"", |s| {
            s.starts_with('"') && s.ends_with('"') && s.len() >= 2
        });
        check("x", |s| s == "x");
    }

    #[test]
    fn alternation_top_level() {
        check("abc|def", |s| s == "abc" || s == "def");
    }
}
