//! Offline shim of `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! tree data model of the sibling `serde` shim. Parses the item's token
//! stream directly (no `syn`/`quote` available offline) and supports the
//! shapes this workspace derives on:
//!
//! * structs with named fields, newtype/tuple structs, unit structs
//! * enums with unit / newtype / tuple / struct variants
//! * container attributes `#[serde(tag = "...")]`, `#[serde(untagged)]`
//!   and `#[serde(rename_all = "snake_case")]`
//!
//! Generics are not supported (the workspace derives only on plain types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct ContainerAttrs {
    tag: Option<String>,
    untagged: bool,
    snake_case: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Unnamed(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Extract `tag = "..."` / `untagged` / `rename_all = "snake_case"` from the
/// tokens inside a `#[serde(...)]` group.
fn parse_serde_attr(tokens: Vec<TokenTree>, attrs: &mut ContainerAttrs) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                let value = match (tokens.get(i + 1), tokens.get(i + 2)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit)))
                        if p.as_char() == '=' =>
                    {
                        i += 2;
                        Some(lit.to_string().trim_matches('"').to_owned())
                    }
                    _ => None,
                };
                match (key.as_str(), value) {
                    ("tag", Some(v)) => attrs.tag = Some(v),
                    ("untagged", None) => attrs.untagged = true,
                    ("rename_all", Some(v)) => {
                        assert_eq!(v, "snake_case", "serde shim: only snake_case is supported");
                        attrs.snake_case = true;
                    }
                    (other, _) => panic!("serde shim: unsupported serde attribute {other:?}"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde shim: unexpected token in serde attribute: {other}"),
        }
        i += 1;
    }
}

/// Split a token slice on top-level commas, treating `<`/`>` as nesting.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<&TokenTree>> {
    let mut out: Vec<Vec<&TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().expect("non-empty").push(t);
    }
    if out.last().is_some_and(|v| v.is_empty()) {
        out.pop();
    }
    out
}

/// Strip leading attributes (`# [ ... ]`) and visibility (`pub`, `pub(...)`)
/// from a field/variant chunk.
fn strip_prefix<'a>(mut chunk: &'a [&'a TokenTree]) -> &'a [&'a TokenTree] {
    loop {
        match chunk {
            [TokenTree::Punct(p), TokenTree::Group(_), rest @ ..] if p.as_char() == '#' => {
                chunk = rest;
            }
            [TokenTree::Ident(id), TokenTree::Group(g), rest @ ..]
                if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                chunk = rest;
            }
            [TokenTree::Ident(id), rest @ ..] if id.to_string() == "pub" => {
                chunk = rest;
            }
            _ => return chunk,
        }
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens)
        .iter()
        .map(|chunk| {
            let chunk = strip_prefix(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens)
        .iter()
        .map(|chunk| {
            let chunk = strip_prefix(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim: expected variant name, found {other:?}"),
            };
            let fields = match chunk.get(1) {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Unnamed(split_commas(&inner).len())
                }
                other => panic!("serde shim: unexpected token after variant {name}: {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;

    // Attributes and visibility.
    loop {
        match (&tokens.get(i), &tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) if p.as_char() == '#' => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" {
                        parse_serde_attr(args.stream().into_iter().collect(), &mut attrs);
                    }
                }
                i += 2;
            }
            (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
                if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
            {
                i += 2;
            }
            (Some(TokenTree::Ident(id)), _) if id.to_string() == "pub" => {
                i += 1;
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other}"),
    };
    let name = match &tokens[i + 1] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, found {other}"),
    };
    if matches!(&tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic types are not supported (deriving on {name})");
    }

    let shape = match kind.as_str() {
        "enum" => match &tokens[i + 2] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde shim: expected enum body, found {other}"),
        },
        "struct" => match &tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Struct(Fields::Unnamed(split_commas(&inner).len()))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        other => panic!("serde shim: cannot derive for {other}"),
    };

    Input { name, attrs, shape }
}

fn variant_label(attrs: &ContainerAttrs, name: &str) -> String {
    if attrs.snake_case {
        snake_case(name)
    } else {
        name.to_owned()
    }
}

// ---- Serialize -----------------------------------------------------------

fn named_fields_object(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => named_fields_object(fields, "self."),
        Shape::Struct(Fields::Unnamed(1)) => "serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Struct(Fields::Unnamed(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Unit) => "serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(input, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_variant(input: &Input, v: &Variant) -> String {
    let ty = &input.name;
    let vname = &v.name;
    let label = variant_label(&input.attrs, vname);
    match (&v.fields, &input.attrs.tag, input.attrs.untagged) {
        (Fields::Unit, Some(tag), _) => format!(
            "{ty}::{vname} => serde::Value::Object(vec![(\"{tag}\".to_string(), serde::Value::Str(\"{label}\".to_string()))]),"
        ),
        (Fields::Unit, None, true) => format!("{ty}::{vname} => serde::Value::Null,"),
        (Fields::Unit, None, false) => {
            format!("{ty}::{vname} => serde::Value::Str(\"{label}\".to_string()),")
        }
        (Fields::Named(fields), tag, untagged) => {
            let binds = fields.join(", ");
            let obj = named_fields_object(fields, "");
            let value = match (tag, untagged) {
                (Some(tag), _) => format!(
                    "{{ let mut o = vec![(\"{tag}\".to_string(), serde::Value::Str(\"{label}\".to_string()))]; \
                     if let serde::Value::Object(fields) = {obj} {{ o.extend(fields); }} serde::Value::Object(o) }}"
                ),
                (None, true) => obj,
                (None, false) => format!(
                    "serde::Value::Object(vec![(\"{label}\".to_string(), {obj})])"
                ),
            };
            format!("{ty}::{vname} {{ {binds} }} => {value},")
        }
        (Fields::Unnamed(n), None, untagged) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let inner = if *n == 1 {
                "serde::Serialize::to_value(f0)".to_owned()
            } else {
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", elems.join(", "))
            };
            let value = if untagged {
                inner
            } else {
                format!("serde::Value::Object(vec![(\"{label}\".to_string(), {inner})])")
            };
            format!("{ty}::{vname}({}) => {value},", binds.join(", "))
        }
        (Fields::Unnamed(_), Some(_), _) => {
            panic!("serde shim: tuple variants cannot be internally tagged ({ty}::{vname})")
        }
    }
}

// ---- Deserialize ---------------------------------------------------------

fn named_fields_build(ty_variant: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\"))?"))
        .collect();
    format!("{ty_variant} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let build = named_fields_build(name, fields);
            format!(
                "let obj = v.as_object().ok_or_else(|| serde::Error::custom(\
                 format!(\"{name}: expected object, found {{}}\", v.kind())))?;\n\
                 Ok({build})"
            )
        }
        Shape::Struct(Fields::Unnamed(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Unnamed(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if arr.len() != {n} {{ return Err(serde::Error::custom(\"{name}: wrong tuple arity\")); }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(input, variants),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<{name}, serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    if input.attrs.untagged {
        // Try each variant in declaration order.
        let attempts: Vec<String> = variants
            .iter()
            .map(|v| {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => format!(
                        "if matches!(v, serde::Value::Null) {{ return Ok({name}::{vname}); }}"
                    ),
                    Fields::Unnamed(1) => format!(
                        "if let Ok(inner) = serde::Deserialize::from_value(v) {{ return Ok({name}::{vname}(inner)); }}"
                    ),
                    Fields::Unnamed(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])"))
                            .collect();
                        format!(
                            "if let Some(arr) = v.as_array() {{ if arr.len() == {n} {{ \
                             if let ({},) = ({},) {{ return Ok({name}::{vname}({})); }} }} }}",
                            (0..*n).map(|i| format!("Ok(f{i})")).collect::<Vec<_>>().join(", "),
                            elems.join(", "),
                            (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", "),
                        )
                    }
                    Fields::Named(fields) => {
                        let build = named_fields_build(&format!("{name}::{vname}"), fields);
                        format!(
                            "if let Some(obj) = v.as_object() {{ \
                             let attempt = (|| -> Result<{name}, serde::Error> {{ Ok({build}) }})(); \
                             if let Ok(got) = attempt {{ return Ok(got); }} }}"
                        )
                    }
                }
            })
            .collect();
        return format!(
            "{}\nErr(serde::Error::custom(\"{name}: no untagged variant matched\"))",
            attempts.join("\n")
        );
    }
    if let Some(tag) = &input.attrs.tag {
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                let vname = &v.name;
                let label = variant_label(&input.attrs, vname);
                match &v.fields {
                    Fields::Unit => format!("\"{label}\" => Ok({name}::{vname}),"),
                    Fields::Named(fields) => {
                        let build = named_fields_build(&format!("{name}::{vname}"), fields);
                        format!("\"{label}\" => Ok({build}),")
                    }
                    Fields::Unnamed(_) => panic!(
                        "serde shim: tuple variants cannot be internally tagged ({name}::{vname})"
                    ),
                }
            })
            .collect();
        return format!(
            "let obj = v.as_object().ok_or_else(|| serde::Error::custom(\
             format!(\"{name}: expected object, found {{}}\", v.kind())))?;\n\
             let tag = serde::field(obj, \"{tag}\").as_str().ok_or_else(|| \
             serde::Error::custom(\"{name}: missing tag {tag}\"))?;\n\
             match tag {{ {} other => Err(serde::Error::custom(format!(\"{name}: unknown variant {{other:?}}\"))) }}",
            arms.join(" ")
        );
    }
    // Externally tagged (serde default): unit variants as plain strings,
    // data variants as single-key objects.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            let label = variant_label(&input.attrs, &v.name);
            format!("\"{label}\" => return Ok({name}::{}),", v.name)
        })
        .collect();
    let keyed_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vname = &v.name;
            let label = variant_label(&input.attrs, vname);
            match &v.fields {
                Fields::Unnamed(1) => format!(
                    "\"{label}\" => return Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),"
                ),
                Fields::Unnamed(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "\"{label}\" => {{ let arr = inner.as_array().ok_or_else(|| \
                         serde::Error::custom(\"{name}::{vname}: expected array\"))?; \
                         if arr.len() != {n} {{ return Err(serde::Error::custom(\"{name}::{vname}: wrong arity\")); }} \
                         return Ok({name}::{vname}({})); }}",
                        elems.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let build = named_fields_build(&format!("{name}::{vname}"), fields);
                    format!(
                        "\"{label}\" => {{ let obj = inner.as_object().ok_or_else(|| \
                         serde::Error::custom(\"{name}::{vname}: expected object\"))?; \
                         return Ok({build}); }}"
                    )
                }
                Fields::Unit => unreachable!(),
            }
        })
        .collect();
    format!(
        "if let Some(s) = v.as_str() {{ match s {{ {} other => return Err(serde::Error::custom(\
         format!(\"{name}: unknown variant {{other:?}}\"))) }} }}\n\
         if let Some(obj) = v.as_object() {{ if let [(key, inner)] = obj {{ match key.as_str() {{ {} \
         other => return Err(serde::Error::custom(format!(\"{name}: unknown variant {{other:?}}\"))) }} }} }}\n\
         Err(serde::Error::custom(format!(\"{name}: expected variant, found {{}}\", v.kind())))",
        unit_arms.join(" "),
        keyed_arms.join(" ")
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
