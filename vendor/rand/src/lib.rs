//! Offline shim of the `rand` crate.
//!
//! The build environment of this workspace has no registry access, so the
//! small slice of the `rand 0.8` API the workspace uses is implemented
//! in-tree: [`rngs::StdRng`] (a SplitMix64-seeded xoshiro256++ generator),
//! the [`Rng`]/[`SeedableRng`] traits with `gen_range`/`gen_bool`, slice
//! shuffling/choosing, and `seq::index::sample`.
//!
//! The generated streams do **not** match upstream `rand` bit-for-bit; the
//! workspace only relies on determinism given a seed, which this shim
//! guarantees.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start + (self.end - self.start) * unit as $t;
                // Narrowing to f32 can round up to the exclusive bound;
                // keep the contract half-open.
                if v < self.end {
                    v
                } else {
                    <$t>::max(self.start, self.end.next_down())
                }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Uniform index sampling without replacement.

        use std::collections::HashMap;

        use crate::{Rng, RngCore};

        /// The sampled indices, in selection order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True if no index was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly.
        ///
        /// Dense partial Fisher–Yates when a fair share of the domain is
        /// drawn; sparse (hash-map backed) Fisher–Yates when
        /// `amount << length`, so the cost is O(amount) rather than
        /// O(length) — this sits on the induction/ranking hot path with
        /// `length` up to the record count of the instance.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            if amount * 8 >= length {
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                return IndexVec(pool);
            }
            // Sparse Fisher–Yates: `swaps[k]` holds the value that a dense
            // pass would have left at position k.
            let mut swaps: std::collections::HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let chosen = swaps.get(&j).copied().unwrap_or(j);
                let displaced = swaps.get(&i).copied().unwrap_or(i);
                swaps.insert(j, displaced);
                out.push(chosen);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(7);
        let mut b = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = super::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
            let w: usize = rng.gen_range(0..2);
            assert!(w < 2);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = super::rngs::StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        let idx: Vec<usize> = super::seq::index::sample(&mut rng, 100, 30)
            .into_iter()
            .collect();
        assert_eq!(idx.len(), 30);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = super::rngs::StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
