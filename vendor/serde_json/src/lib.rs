//! Offline shim of `serde_json`: render and parse the `serde` shim's
//! [`Value`] tree as RFC 8259 JSON text.

pub use serde::{Error, Number, Value};

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---- writer --------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) if f.is_finite() => {
            if f == f.trunc() && f.abs() < 1e15 {
                // Keep integral floats readable ("1.0" not "1").
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Number::Float(_) => out.push_str("null"), // non-finite, as serde_json does
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf8 in number"))?;
        let num = if is_float {
            Number::Float(text.parse::<f64>().map_err(Error::custom)?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            Number::NegInt(text.parse::<i64>().map_err(Error::custom)?)
        } else {
            Number::PosInt(text.parse::<u64>().map_err(Error::custom)?)
        };
        Ok(Value::Num(num))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode the utf8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| Error::custom("invalid utf8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid unicode escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid unicode escape"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\nb\\u00e4\"").unwrap(), "a\nbä");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<(String, u32)> = vec![("a".into(), 1), ("ä ö".into(), 2)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, u32)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("x \"quoted\"".to_string())),
            (
                "items".to_string(),
                Value::Array(vec![Value::Num(Number::PosInt(1)), Value::Null]),
            ),
        ]);
        let json = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 tail").is_err());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("0.25").unwrap();
        assert_eq!(back, 0.25);
    }
}
