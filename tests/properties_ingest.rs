//! Ingestion determinism battery.
//!
//! 1. Streaming parallel ingestion (`affidavit_store::ingest`) must
//!    produce a `(Table, ValuePool)` **byte-identical** to the serial
//!    in-memory parser (`csv::read_str`) for adversarial inputs across
//!    seeds × thread counts {1, 2, 4} × chunk sizes {1, 64, 4096}.
//! 2. A full `explain` over the Figure 1 instance and a Table 2 dataset
//!    spec must render an **identical report** under `--pool-backend
//!    disk` (tiny budget, forced spills) and `--pool-backend ram`.
//! 3. A `SegmentPool` under a deliberately tiny budget must actually
//!    spill and still round-trip every string.
//!
//! The CI matrix leg pins one (threads, chunk size) combination via
//! `AFFIDAVIT_INGEST_THREADS` / `AFFIDAVIT_INGEST_CHUNK_ROWS`; without
//! them the whole matrix runs.

use affidavit::core::config::AffidavitConfig;
use affidavit::core::instance::ProblemInstance;
use affidavit::core::report::render_report;
use affidavit::core::search::Affidavit;
use affidavit::datasets::running_example::{ATTRS, SOURCE_ROWS, TARGET_ROWS};
use affidavit::store::{ingest, IngestOptions, PoolBackend, PoolConfig};
use affidavit::table::{csv, Table, ValuePool};

/// The `(threads, chunk_rows)` combinations under test: the env override
/// (CI matrix leg) wins, otherwise the full grid.
fn matrix() -> Vec<(usize, usize)> {
    let env_usize =
        |name: &str| -> Option<usize> { std::env::var(name).ok().and_then(|v| v.parse().ok()) };
    if let (Some(threads), Some(chunk_rows)) = (
        env_usize("AFFIDAVIT_INGEST_THREADS"),
        env_usize("AFFIDAVIT_INGEST_CHUNK_ROWS"),
    ) {
        return vec![(threads, chunk_rows)];
    }
    let mut combos = Vec::new();
    for threads in [1usize, 2, 4] {
        for chunk_rows in [1usize, 64, 4096] {
            combos.push((threads, chunk_rows));
        }
    }
    combos
}

/// Everything that makes the pair: schema, pool contents in interning
/// order, and every record's symbol tuple.
fn fingerprint(table: &Table, pool: &ValuePool) -> String {
    let mut out = String::new();
    for name in table.schema().names() {
        out.push_str(name);
        out.push('\u{1}');
    }
    for (_, s) in pool.iter() {
        out.push_str(s);
        out.push('\u{2}');
    }
    for record in table.rows() {
        for sym in record.iter() {
            out.push_str(&sym.0.to_string());
            out.push(',');
        }
        out.push('\u{3}');
    }
    out
}

/// Adversarial CSV: quoted fields with embedded separators, quotes and
/// newlines, CRLF endings, empty fields, blank lines, unicode, values
/// recurring across distant chunks (so several workers "discover" the
/// same string), and a field far longer than the chunker's read buffer.
fn adversarial_csv(seed: u64) -> String {
    let mut text = String::from("id,amount,unit,\"no,te\"\n");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let units = ["USD", "k $", "h€", "", "東京"];
    for i in 0..(240 + (seed % 37)) {
        let r = next();
        let unit = units[(r % 5) as usize];
        match r % 7 {
            0 => text.push_str(&format!("k{i},{},{unit},plain\r\n", r % 100_000)),
            1 => text.push_str(&format!(
                "k{i},{},\"{unit}\",\"quo\"\"ted, with\nnewline\"\n",
                r % 1_000
            )),
            2 => text.push_str(&format!("k{i},,,\n")),
            3 => {
                // Blank line between records (skipped by the parser).
                text.push('\n');
                text.push_str(&format!("k{i},{},{unit},x\n", r % 10));
            }
            4 => text.push_str(&format!("\"k{i}\",\"{}\",{unit},\"\"\n", r % 500)),
            5 => {
                // A field much longer than one BufRead fill.
                let long = "L".repeat(9000 + (r % 100) as usize);
                text.push_str(&format!("k{i},{},{unit},\"{long}\"\n", r % 500));
            }
            _ => text.push_str(&format!("k{i},{},{unit},shared-value\n", r % 50)),
        }
    }
    text.push_str("last,0,USD,\"no trailing newline\"");
    text
}

#[test]
fn streaming_parallel_ingestion_is_byte_identical_to_serial() {
    for seed in [1u64, 2, 3] {
        let text = adversarial_csv(seed);
        let mut serial_pool = ValuePool::new();
        let serial = csv::read_str(&text, &mut serial_pool, csv::CsvOptions::default()).unwrap();
        let want = fingerprint(&serial, &serial_pool);
        for (threads, chunk_rows) in matrix() {
            let opts = IngestOptions {
                chunk_rows,
                threads,
                ..IngestOptions::default()
            };
            let mut pool = ValuePool::new();
            let table = ingest::read_stream(text.as_bytes(), &mut pool, &opts).unwrap();
            assert_eq!(
                fingerprint(&table, &pool),
                want,
                "seed {seed}: threads={threads} chunk_rows={chunk_rows} diverged from serial"
            );
        }
    }
}

#[test]
fn serial_streaming_reader_matches_in_memory_parser() {
    // The satellite fix: `csv::read` (used by `read_path`) streams through
    // the chunker instead of slurping, and must stay byte-identical.
    for seed in [4u64, 5] {
        let text = adversarial_csv(seed);
        let mut mem_pool = ValuePool::new();
        let mem = csv::read_str(&text, &mut mem_pool, csv::CsvOptions::default()).unwrap();
        let mut stream_pool = ValuePool::new();
        let stream = csv::read(
            text.as_bytes(),
            &mut stream_pool,
            csv::CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(
            fingerprint(&mem, &mem_pool),
            fingerprint(&stream, &stream_pool)
        );
    }
}

fn rows_to_csv(header: &[&str], rows: &[&[&str]]) -> String {
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    text
}

/// Ingest `text` with the given backend and options, explain the pair,
/// and return the rendered report plus search counters.
fn explain_through_backend(
    source_csv: &str,
    target_csv: &str,
    backend: PoolBackend,
    threads: usize,
) -> String {
    let pool_cfg = PoolConfig {
        backend,
        // Deliberately tiny: the Figure 1 pool alone exceeds this, so the
        // disk run must spill and page segments back in mid-search.
        budget_bytes: 512,
    };
    let mut pool = pool_cfg.build().unwrap();
    let opts = IngestOptions {
        chunk_rows: 4,
        threads,
        ..IngestOptions::default()
    };
    let source = ingest::read_stream(source_csv.as_bytes(), &mut pool, &opts).unwrap();
    let target = ingest::read_stream(target_csv.as_bytes(), &mut pool, &opts).unwrap();
    if backend == PoolBackend::Disk {
        let stats = pool.store_stats().expect("disk backend attached");
        assert!(stats.spilled_bytes > 0, "tiny budget must force spills");
    }
    let mut instance = ProblemInstance::new(source, target, pool).unwrap();
    let out =
        Affidavit::new(AffidavitConfig::paper_id().with_seed(0xEDB7_2020)).explain(&mut instance);
    format!(
        "{}\npolled={} expansions={} cost={}",
        render_report(&out.explanation, &instance),
        out.stats.polled,
        out.stats.expansions,
        out.stats.end_state_cost.to_bits()
    )
}

#[test]
fn disk_and_ram_backends_render_identical_figure1_reports() {
    let source_rows: Vec<&[&str]> = SOURCE_ROWS.iter().map(|r| &r[..]).collect();
    let target_rows: Vec<&[&str]> = TARGET_ROWS.iter().map(|r| &r[..]).collect();
    let s = rows_to_csv(&ATTRS, &source_rows);
    let t = rows_to_csv(&ATTRS, &target_rows);
    let ram = explain_through_backend(&s, &t, PoolBackend::Ram, 1);
    let disk = explain_through_backend(&s, &t, PoolBackend::Disk, 2);
    assert_eq!(ram, disk, "disk backend must not change the explanation");
}

#[test]
fn disk_and_ram_backends_render_identical_table2_reports() {
    use affidavit::datagen::blueprint::{Blueprint, GenConfig};
    use affidavit::datasets::specs::by_name;
    use affidavit::datasets::synth::generate_rows;

    // One Table 2 evaluation spec, synthetically transformed as in §5.1.
    let spec = by_name("balance").expect("table 2 spec exists");
    let (base, pool) = generate_rows(&spec, spec.rows.min(150), 11);
    let generated = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 11)).materialize_full();
    let mut s = Vec::new();
    let mut t = Vec::new();
    csv::write(
        &mut s,
        &generated.instance.source,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .unwrap();
    csv::write(
        &mut t,
        &generated.instance.target,
        &generated.instance.pool,
        csv::CsvOptions::default(),
    )
    .unwrap();
    let s = String::from_utf8(s).unwrap();
    let t = String::from_utf8(t).unwrap();
    let ram = explain_through_backend(&s, &t, PoolBackend::Ram, 1);
    let disk = explain_through_backend(&s, &t, PoolBackend::Disk, 4);
    assert_eq!(ram, disk, "disk backend must not change the explanation");
}

#[test]
fn segment_pool_spills_and_round_trips_under_tiny_budget() {
    use affidavit::store::{SegmentPool, SegmentPoolConfig};
    use affidavit::table::Interner;

    let mut pool = SegmentPool::create(SegmentPoolConfig {
        budget_bytes: 256,
        segment_bytes: 64,
        spill_parent: None,
    })
    .unwrap();
    let values: Vec<String> = (0..300).map(|i| format!("spilled-value-{i:05}")).collect();
    let syms: Vec<_> = values.iter().map(|v| pool.intern(v)).collect();
    assert!(pool.spilled_bytes() > 0, "tiny budget must spill to disk");
    assert!(
        pool.resident_bytes() < 1024,
        "resident bytes ({}) must stay near the budget",
        pool.resident_bytes()
    );
    for (v, &sym) in values.iter().zip(&syms) {
        assert_eq!(pool.get(sym), v);
        assert_eq!(pool.intern(v), sym, "re-interning must be idempotent");
    }
}
