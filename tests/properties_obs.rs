//! Observability-is-a-pure-side-channel battery.
//!
//! The load-bearing invariant of `affidavit-obs`: spans, points and
//! metrics are written by the engine and read by nobody — no code path
//! branches on them — so every output byte is identical with tracing
//! enabled or disabled. This battery proves it for the one-shot explain
//! path (both paper configurations × threads {1, 4}), directory
//! profiling, and the serve daemon; validates the NDJSON event schema
//! (parseable, nested, monotonic); and pins the metrics registry to the
//! legacy counter structs it absorbed (`SearchStats`,
//! `SessionCounters`).
//!
//! Obs state (the enable switch, recorder buffer, registry) is
//! process-wide, so every test serializes on one mutex and drains the
//! recorder before starting.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use affidavit_core::profiling::{profile_dirs, stage_file_pair, ProfileOptions};
use affidavit_core::report::render_report;
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_obs::{Event, KIND_BEGIN, KIND_END, KIND_POINT};
use affidavit_serve::{serve, ExplainSpec, ServeClient, ServeOptions};
use affidavit_store::{ingest_pair, IngestOptions, PoolConfig, SessionKey, SessionLru};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Start from a clean recorder so event assertions see only this
    // test's stream.
    affidavit_obs::set_enabled(true);
    affidavit_obs::drain();
    guard
}

/// A snapshot pair with a systematic change plus deletions/insertions,
/// so the search exercises induction, blocking and rendering.
fn write_pair(dir: &Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let src = dir.join("source.csv");
    let tgt = dir.join("target.csv");
    let mut s = String::from("k,v,w\n");
    let mut t = String::from("k,v,w\n");
    for i in 0..60 {
        s.push_str(&format!("k{i},{},tag{}\n", i * 1000, i % 7));
        if i % 11 != 10 {
            t.push_str(&format!("k{i},{i},tag{}\n", i % 7));
        }
    }
    t.push_str("extra,1,tagx\n");
    std::fs::write(&src, s).unwrap();
    std::fs::write(&tgt, t).unwrap();
    (src, tgt)
}

fn config(name: &str, threads: usize) -> AffidavitConfig {
    let mut cfg = match name {
        "id" => AffidavitConfig::paper_id(),
        "overlap" => AffidavitConfig::paper_overlap(),
        other => panic!("unknown config {other}"),
    };
    cfg.threads = threads;
    cfg
}

/// Everything a one-shot explain emits, as one deterministic string:
/// the rendered report plus every deterministic counter.
fn explain_fingerprint(src: &Path, tgt: &Path, cfg: &AffidavitConfig) -> String {
    let opts = ProfileOptions {
        config: cfg.clone(),
        ..ProfileOptions::default()
    };
    let mut instance = stage_file_pair(src, tgt, &opts).unwrap();
    let outcome = Affidavit::new(cfg.clone()).explain(&mut instance);
    format!(
        "{}\n{};{};{};{};{};{}",
        render_report(&outcome.explanation, &instance),
        outcome.stats.polled,
        outcome.stats.expansions,
        outcome.stats.states_generated,
        outcome.stats.speculative_expansions,
        outcome.stats.speculation_discarded,
        outcome.stats.end_state_cost.to_bits(),
    )
}

#[test]
fn explain_bytes_are_identical_with_obs_on_and_off() {
    let _guard = serial();
    let dir = std::env::temp_dir().join("affidavit-obs-onoff");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    for name in ["id", "overlap"] {
        for threads in [1usize, 4] {
            let cfg = config(name, threads);
            affidavit_obs::set_enabled(false);
            let off = explain_fingerprint(&src, &tgt, &cfg);
            affidavit_obs::set_enabled(true);
            let on = explain_fingerprint(&src, &tgt, &cfg);
            assert_eq!(
                on, off,
                "tracing changed output bytes ({name}, threads {threads})"
            );
            let (events, _) = affidavit_obs::drain();
            assert!(
                events.iter().any(|e| e.name == "search.explain"),
                "the traced run must record the search span ({name}, threads {threads})"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_dirs_bytes_are_identical_with_obs_on_and_off() {
    let _guard = serial();
    let root = std::env::temp_dir().join("affidavit-obs-profile");
    std::fs::remove_dir_all(&root).ok();
    let before = root.join("v1");
    let after = root.join("v2");
    write_pair(&before);
    std::fs::create_dir_all(&after).unwrap();
    std::fs::rename(before.join("target.csv"), after.join("source.csv")).unwrap();
    std::fs::copy(before.join("source.csv"), after.join("extra.csv")).unwrap();
    let opts = ProfileOptions::default();
    let canonical = |mut p: affidavit_core::profiling::SnapshotProfile| {
        p.strip_timing();
        format!("{}\n{}", p.render(), p.to_json())
    };
    affidavit_obs::set_enabled(false);
    let off = canonical(profile_dirs(&before, &after, &opts).unwrap());
    affidavit_obs::set_enabled(true);
    let on = canonical(profile_dirs(&before, &after, &opts).unwrap());
    assert_eq!(on, off, "tracing changed the rendered snapshot profile");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn served_bytes_are_identical_with_obs_on_and_off() {
    let _guard = serial();
    let dir = std::env::temp_dir().join("affidavit-obs-serve");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let spec = ExplainSpec::new(src.to_str().unwrap(), tgt.to_str().unwrap());

    // The untraced one-shot run is the reference bytes.
    affidavit_obs::set_enabled(false);
    let opts = ProfileOptions {
        config: spec.config.clone(),
        ..ProfileOptions::default()
    };
    let mut instance = stage_file_pair(&src, &tgt, &opts).unwrap();
    let outcome = Affidavit::new(spec.config.clone()).explain(&mut instance);
    let report = render_report(&outcome.explanation, &instance);

    affidavit_obs::set_enabled(true);
    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());
    let reply = client.explain(&spec).unwrap();
    assert_eq!(
        reply.report, report,
        "served report bytes diverge from the untraced one-shot run"
    );
    assert_eq!(reply.polled, outcome.stats.polled as u64);
    assert_eq!(reply.generated, outcome.stats.states_generated as u64);
    let (events, _) = affidavit_obs::drain();
    for name in [
        "serve.request",
        "serve.stage",
        "serve.search",
        "search.explain",
    ] {
        assert!(
            events.iter().any(|e| e.name == name),
            "served request must record {name}"
        );
    }
    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_event_stream_is_schema_valid_nested_and_monotonic() {
    let _guard = serial();
    let dir = std::env::temp_dir().join("affidavit-obs-schema");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let cfg = config("id", 4);
    explain_fingerprint(&src, &tgt, &cfg);
    let (events, dropped) = affidavit_obs::drain();
    assert_eq!(dropped, 0, "this run fits the recorder buffer");
    assert!(!events.is_empty());

    let mut open: std::collections::HashMap<u64, &Event> = std::collections::HashMap::new();
    let mut prev_seq = 0u64;
    let mut prev_ts = 0u64;
    for (i, e) in events.iter().enumerate() {
        // NDJSON round trip: the line is one parseable JSON object that
        // deserializes back to the identical event.
        let line = e.to_ndjson();
        assert!(!line.contains('\n'), "one event, one line: {line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, e, "event {i} must round-trip through NDJSON");
        // Monotonic interleaving: seq strictly increases, timestamps
        // never run backwards.
        if i > 0 {
            assert!(e.seq > prev_seq, "seq must strictly increase at {i}");
            assert!(e.ts_micros >= prev_ts, "time ran backwards at {i}");
        }
        prev_seq = e.seq;
        prev_ts = e.ts_micros;
        match e.kind.as_str() {
            KIND_BEGIN => {
                assert!(e.elapsed_micros.is_none());
                // A nested span's parent must already be open on the
                // same thread.
                if let Some(parent) = e.parent {
                    let p = open.get(&parent).unwrap_or_else(|| {
                        panic!("span {} opened under unknown parent {parent}", e.span)
                    });
                    assert_eq!(p.thread, e.thread, "parent/child must share a thread");
                }
                open.insert(e.span, e);
            }
            KIND_END => {
                let begin = open.remove(&e.span).unwrap_or_else(|| {
                    panic!("end without a begin for span {} ({})", e.span, e.name)
                });
                assert_eq!(begin.name, e.name, "begin/end must agree on the name");
                assert!(e.elapsed_micros.is_some(), "end events carry elapsed time");
            }
            KIND_POINT => assert!(e.elapsed_micros.is_none()),
            other => panic!("unknown event kind {other:?}"),
        }
    }
    assert!(
        open.is_empty(),
        "every span must close: {:?} left open",
        open.values().map(|e| &e.name).collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_registry_mirrors_search_stats_exactly() {
    let _guard = serial();
    let dir = std::env::temp_dir().join("affidavit-obs-registry-search");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let cfg = config("id", 1);
    let opts = ProfileOptions {
        config: cfg.clone(),
        ..ProfileOptions::default()
    };
    let mut instance = stage_file_pair(&src, &tgt, &opts).unwrap();
    let outcome = Affidavit::new(cfg).explain(&mut instance);
    let m = affidavit_obs::metrics();
    assert_eq!(m.counter("search_polled"), outcome.stats.polled as u64);
    assert_eq!(
        m.counter("search_expansions"),
        outcome.stats.expansions as u64
    );
    assert_eq!(
        m.counter("search_states_generated"),
        outcome.stats.states_generated as u64
    );
    assert_eq!(
        m.counter("search_speculative_expansions"),
        outcome.stats.speculative_expansions as u64
    );
    assert_eq!(
        m.counter("search_speculation_discarded"),
        outcome.stats.speculation_discarded as u64
    );
    assert_eq!(
        m.gauge("search_end_state_cost"),
        Some(outcome.stats.end_state_cost)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_registry_mirrors_session_counters_exactly() {
    let _guard = serial();
    let dir = std::env::temp_dir().join("affidavit-obs-registry-session");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let pool_cfg = PoolConfig::default();
    let ingest_opts = IngestOptions::default();
    let mut lru = SessionLru::new(1);
    let key = SessionKey::for_files(&src, &tgt, &pool_cfg).unwrap();
    for _ in 0..3 {
        lru.get_or_ingest(key, || ingest_pair(&src, &tgt, &ingest_opts, &pool_cfg))
            .unwrap();
    }
    let counters = lru.counters();
    assert_eq!((counters.ingests, counters.hits), (1, 2));
    let m = affidavit_obs::metrics();
    assert_eq!(m.counter("session_ingests_total"), counters.ingests);
    assert_eq!(m.counter("session_hits_total"), counters.hits);
    assert_eq!(m.counter("session_evictions_total"), counters.evictions);
    // The session hot path also traces: one ingest span, two hit points.
    let (events, _) = affidavit_obs::drain();
    let ingests = events
        .iter()
        .filter(|e| e.name == "session.ingest" && e.kind == KIND_END)
        .count();
    let hits = events.iter().filter(|e| e.name == "session.hit").count();
    assert_eq!((ingests, hits), (1, 2));
    std::fs::remove_dir_all(&dir).ok();
}
