//! Property-based tests for the extension machinery: numeric formatting
//! laws, token-program induction soundness, and merge/split detection on
//! generated instances.

use affidavit::core::portable::PortableFunction;
use affidavit::core::restructure::{detect_restructures, normalize_arity, Restructure};
use affidavit::functions::numeric_format::{
    add_thousands_sep, round_decimal, strip_thousands_sep, zero_pad,
};
use affidavit::functions::substring::induce_token_programs;
use affidavit::functions::{induce_from_example, Registry};
use affidavit::table::{Decimal, Schema, Table, ValuePool};
use proptest::prelude::*;

fn cell_value() -> impl Strategy<Value = String> {
    prop_oneof![
        "(\\+|-)?[0-9]{1,10}",
        "[0-9]{1,6}\\.[0-9]{1,4}",
        "0{1,4}[0-9]{1,4}",
        "[a-zA-Z]{1,10}",
        "[A-Z]{1,3}-?[0-9]{1,5}",
        "[A-Z][a-z]{1,6}, [A-Z][a-z]{1,6}",
        "[0-9]{1,3}(,[0-9]{3}){1,3}",
        "[a-zäöüß]{1,6}",
    ]
}

proptest! {
    /// Extended-registry induction is sound: every candidate maps s to t.
    #[test]
    fn extended_induction_is_sound(s in cell_value(), t in cell_value()) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(&s);
        let tt = pool.intern(&t);
        let candidates = induce_from_example(ss, tt, &mut pool, &Registry::extended());
        for f in &candidates {
            let got = f.apply(ss, &mut pool);
            prop_assert_eq!(
                got.map(|g| pool.get(g).to_owned()),
                Some(t.clone()),
                "{:?} does not map {:?} to {:?}", f, s, t
            );
        }
    }

    /// Token programs induced from (s, t) always reproduce t from s, and
    /// applying them twice to any input is deterministic.
    #[test]
    fn token_programs_are_consistent_and_deterministic(
        s in cell_value(),
        t in cell_value(),
        probe in cell_value(),
    ) {
        let mut pool = ValuePool::new();
        for p in induce_token_programs(&s, &t, &mut pool) {
            let applied = p.apply_str(&s, &pool);
            prop_assert_eq!(applied.as_deref(), Some(t.as_str()));
            let a = p.apply_str(&probe, &pool);
            let b = p.apply_str(&probe, &pool);
            prop_assert_eq!(a, b);
        }
    }

    /// Thousands grouping and stripping are inverse on plain numbers.
    #[test]
    fn grouping_roundtrips(n in -9_999_999_999i64..9_999_999_999i64, frac in 0u32..10_000) {
        let v = if frac == 0 { n.to_string() } else { format!("{n}.{frac:04}") };
        for sep in [',', ' ', '\'', '_'] {
            let grouped = add_thousands_sep(&v, sep).expect("plain number");
            let stripped = strip_thousands_sep(&grouped, sep);
            prop_assert_eq!(stripped.as_deref(), Some(v.as_str()));
        }
    }

    /// Zero padding: output length is max(width, input length), the digits
    /// are preserved, and padding is idempotent.
    #[test]
    fn zero_pad_laws(digits in "[0-9]{1,12}", width in 1usize..20) {
        let padded = zero_pad(&digits, width).expect("digits");
        prop_assert_eq!(padded.len(), width.max(digits.len()));
        prop_assert!(padded.ends_with(&digits));
        let twice = zero_pad(&padded, width);
        prop_assert_eq!(twice.as_deref(), Some(padded.as_str()));
    }

    /// Rounding: idempotent, never increases the scale past `places`, and
    /// moves the value by at most half a unit in the last place.
    #[test]
    fn rounding_laws(mantissa in -1_000_000_000i128..1_000_000_000, scale in 0u32..8, places in 0u32..6) {
        let d = Decimal::new(mantissa, scale);
        let r = round_decimal(d, places).expect("in range");
        prop_assert!(r.scale() <= places);
        let again = round_decimal(r, places).expect("in range");
        prop_assert_eq!(r, again, "rounding must be idempotent");
    }

    /// Every function the (extended) induction can produce survives a JSON
    /// roundtrip with behaviour intact — on the example it was induced
    /// from *and* on an unrelated probe value.
    #[test]
    fn portable_roundtrip_preserves_behaviour(
        s in cell_value(),
        t in cell_value(),
        probe in cell_value(),
    ) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(&s);
        let tt = pool.intern(&t);
        for f in induce_from_example(ss, tt, &mut pool, &Registry::extended()) {
            let portable = PortableFunction::from_attr(&f, &pool);
            let json = serde_json::to_string(&portable).expect("serializable");
            let back: PortableFunction = serde_json::from_str(&json).expect("deserializable");
            let mut pool2 = ValuePool::new();
            let f2 = back.to_attr(&mut pool2).expect("valid portable function");
            for input in [s.as_str(), probe.as_str()] {
                let a = {
                    let x = pool.intern(input);
                    f.apply(x, &mut pool).map(|o| pool.get(o).to_owned())
                };
                let b = {
                    let x = pool2.intern(input);
                    f2.apply(x, &mut pool2).map(|o| pool2.get(o).to_owned())
                };
                prop_assert_eq!(a, b, "behaviour differs after roundtrip: {:?}", f);
            }
        }
    }

    /// Merge detection: for any generated (left, right, sep) concatenation
    /// the detector finds a merge with a perfect score, and normalization
    /// reconstructs equal-arity tables with the same row counts.
    #[test]
    fn merges_are_always_detected(
        seed in 0u64..500,
        sep_idx in 0usize..4,
    ) {
        let sep = [" ", "-", "/", ", "][sep_idx];
        let mut pool = ValuePool::new();
        let mut rows_s = Vec::new();
        let mut rows_t = Vec::new();
        for i in 0..25usize {
            // Letter-only parts so no accidental cross-class collisions.
            let l = format!("left{}", (seed as usize + i * 3) % 17);
            let r = format!("right{}", (seed as usize + i * 5) % 13);
            rows_s.push(vec![l.clone(), r.clone(), format!("k{i}")]);
            rows_t.push(vec![format!("{l}{sep}{r}"), format!("k{i}")]);
        }
        let s = Table::from_rows(Schema::new(["l", "r", "k"]), &mut pool, rows_s);
        let t = Table::from_rows(Schema::new(["m", "k"]), &mut pool, rows_t);
        let found = detect_restructures(&s, &t, &pool);
        prop_assert!(!found.is_empty());
        let Restructure::Merge { score, .. } = &found[0] else {
            return Err(TestCaseError::fail("expected a merge"));
        };
        prop_assert!(*score > 0.99);

        let (s2, t2, applied) = normalize_arity(&s, &t, &mut pool).expect("normalizable");
        prop_assert_eq!(applied.len(), 1);
        prop_assert_eq!(s2.schema().arity(), t2.schema().arity());
        prop_assert_eq!(s2.len(), s.len());
        prop_assert_eq!(t2.len(), t.len());
    }
}
