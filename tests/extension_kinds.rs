//! End-to-end tests for the extension meta functions (numeric formatting
//! and FlashFill-lite token programs): the full Affidavit search must
//! *learn* these transformations from unaligned snapshots when they are
//! enabled via `Registry::extended`, and must degrade gracefully (value
//! maps / higher cost) when they are not.

use affidavit::core::{Affidavit, AffidavitConfig};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datagen::metrics::evaluate;
use affidavit::datasets::{by_name, synth};
use affidavit::functions::{AttrFunction, MetaKind, Registry};
use affidavit::prelude::ProblemInstance;
use affidavit::table::{Schema, Table, ValuePool};

/// Hand-built instance: four attributes, three of which require extension
/// kinds, plus an unchanged anchor column and a little noise.
///
/// | attribute | transformation                      | extension kind |
/// |-----------|-------------------------------------|----------------|
/// | Name      | `"Last, First" ↦ "First Last"`      | TokenProgram   |
/// | Code      | zero-pad to 6                       | ZeroPad        |
/// | Amount    | thousands grouping with `,`         | ThousandsSep   |
/// | Org       | unchanged                           | —              |
fn formatting_instance() -> ProblemInstance {
    let firsts = [
        "John", "Jane", "Max", "Ada", "Alan", "Grace", "Edsger", "Barbara", "Kurt", "Emmy", "Carl",
        "Sofia", "Leon", "Ida", "Noam", "Mary", "Paul", "Rosa", "Hans", "Vera",
    ];
    let lasts = [
        "Doe",
        "Fink",
        "Weber",
        "Lovelace",
        "Turing",
        "Hopper",
        "Dijkstra",
        "Liskov",
        "Goedel",
        "Noether",
        "Gauss",
        "Kovalev",
        "Euler",
        "Rhodes",
        "Chomsky",
        "Shelley",
        "Erdos",
        "Luxemburg",
        "Bethe",
        "Rubin",
    ];
    let orgs = ["IBM", "SAP", "BASF", "DAB"];

    let mut src_rows: Vec<Vec<String>> = Vec::new();
    let mut tgt_rows: Vec<Vec<String>> = Vec::new();
    for i in 0..60usize {
        let first = firsts[i % firsts.len()];
        let last = lasts[(i * 7) % lasts.len()];
        let code = (i * 37 + 5).to_string();
        let amount = (1_000 + i * 73_911).to_string();
        let org = orgs[i % orgs.len()];
        src_rows.push(vec![
            format!("{last}, {first}"),
            code.clone(),
            amount.clone(),
            org.to_owned(),
        ]);
        // The reference transformation of the core.
        let padded = format!("{code:0>6}");
        let grouped = group_thousands(&amount);
        tgt_rows.push(vec![
            format!("{first} {last}"),
            padded,
            grouped,
            org.to_owned(),
        ]);
    }
    // Source-only noise (deleted) and target-only noise (inserted).
    src_rows.push(vec![
        "Deleted, Rec".into(),
        "9".into(),
        "77".into(),
        "IBM".into(),
    ]);
    src_rows.push(vec![
        "Gone, Also".into(),
        "8".into(),
        "66".into(),
        "SAP".into(),
    ]);
    tgt_rows.push(vec![
        "New Person".into(),
        "000042".into(),
        "1,234,567".into(),
        "DAB".into(),
    ]);

    let schema = Schema::new(["Name", "Code", "Amount", "Org"]);
    let mut pool = ValuePool::new();
    let source = Table::from_rows(schema.clone(), &mut pool, src_rows);
    let target = Table::from_rows(schema, &mut pool, tgt_rows);
    ProblemInstance::new(source, target, pool).expect("valid instance")
}

fn group_thousands(s: &str) -> String {
    affidavit::functions::numeric_format::add_thousands_sep(s, ',').expect("numeric")
}

fn extended_config() -> AffidavitConfig {
    let mut cfg = AffidavitConfig::paper_id();
    cfg.registry = Registry::extended();
    cfg
}

#[test]
fn search_learns_all_three_extension_kinds() {
    let mut inst = formatting_instance();
    let out = Affidavit::new(extended_config()).explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();

    let kinds: Vec<MetaKind> = out
        .explanation
        .functions
        .iter()
        .map(AttrFunction::kind)
        .collect();
    assert_eq!(kinds[0], MetaKind::TokenProgram, "Name: {:?}", kinds);
    assert_eq!(kinds[1], MetaKind::ZeroPad, "Code: {:?}", kinds);
    assert_eq!(kinds[2], MetaKind::ThousandsSep, "Amount: {:?}", kinds);
    assert_eq!(kinds[3], MetaKind::Identity, "Org: {:?}", kinds);

    // All 60 core records aligned, the 2+1 noise records set aside.
    assert_eq!(out.explanation.core_size(), 60);
    assert_eq!(out.explanation.deleted.len(), 2);
    assert_eq!(out.explanation.inserted.len(), 1);
}

#[test]
fn learned_functions_generalize_to_unseen_records() {
    let mut inst = formatting_instance();
    let out = Affidavit::new(extended_config()).explain(&mut inst);
    let fns = out.explanation.functions.clone();
    let pool = &mut inst.pool;

    let apply = |f: &AttrFunction, v: &str, pool: &mut ValuePool| {
        let s = pool.intern(v);
        let o = f.apply(s, pool).expect("applies");
        pool.get(o).to_owned()
    };
    // None of these values occur in the instance.
    assert_eq!(apply(&fns[0], "Curie, Marie", pool), "Marie Curie");
    assert_eq!(apply(&fns[1], "7", pool), "000007");
    assert_eq!(apply(&fns[2], "98765432", pool), "98,765,432");
}

#[test]
fn classic_registry_pays_for_missing_extension_kinds() {
    // Without the extension kinds the search must still produce a valid
    // explanation, but the formatting columns need value maps (or worse),
    // so the explanation is strictly more expensive.
    let mut inst_ext = formatting_instance();
    let ext = Affidavit::new(extended_config()).explain(&mut inst_ext);
    let mut inst_classic = formatting_instance();
    let classic = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst_classic);
    classic.explanation.validate(&mut inst_classic).unwrap();

    let arity = inst_ext.arity();
    assert!(
        ext.explanation.cost_units(arity) < classic.explanation.cost_units(arity),
        "extended {} !< classic {}",
        ext.explanation.cost_units(arity),
        classic.explanation.cost_units(arity)
    );
    assert!(!classic
        .explanation
        .functions
        .iter()
        .any(|f| f.kind().is_extension()));
}

#[test]
fn datagen_extension_instances_are_solved_by_extended_registry() {
    let spec = by_name("abalone").expect("dataset exists");
    let (base, pool) = synth::generate_rows(&spec, 500, 77);
    let cfg = GenConfig::new(0.3, 0.5, 77).with_extension_kinds();
    let mut gen = Blueprint::new(base, pool, cfg).materialize_full();

    let out = Affidavit::new(extended_config()).explain(&mut gen.instance);
    out.explanation.validate(&mut gen.instance).unwrap();
    let m = evaluate(&out.explanation, &mut gen, out.stats.duration);
    assert!(m.accuracy > 0.8, "acc {}", m.accuracy);
    assert!(m.delta_core > 0.8, "Δcore {}", m.delta_core);
}

#[test]
fn extension_explanations_roundtrip_through_portable_json() {
    use affidavit::core::portable::PortableExplanation;

    let mut inst = formatting_instance();
    let out = Affidavit::new(extended_config()).explain(&mut inst);
    let portable = PortableExplanation::from_explanation(&out.explanation, &inst);
    let json = portable.to_json();
    let back = PortableExplanation::from_json(&json).unwrap();

    let mut pool = ValuePool::new();
    let fns = back.functions(&mut pool).unwrap();
    let v = pool.intern("Curie, Marie");
    let o = fns[0].apply(v, &mut pool).unwrap();
    assert_eq!(pool.get(o), "Marie Curie");
    let v = pool.intern("4200000");
    let o = fns[2].apply(v, &mut pool).unwrap();
    assert_eq!(pool.get(o), "4,200,000");
}
