//! Failure injection: malformed inputs must produce precise errors, never
//! panics or silent corruption.

use affidavit::core::ProblemInstance;
use affidavit::table::{csv, Schema, Table, TableError, ValuePool};

#[test]
fn csv_arity_mismatch_reports_line() {
    let mut pool = ValuePool::new();
    let err =
        csv::read_str("a,b\n1,2\n3\n4,5\n", &mut pool, csv::CsvOptions::default()).unwrap_err();
    match err {
        TableError::ArityMismatch {
            line,
            row,
            expected,
            found,
        } => {
            assert_eq!((line, row, expected, found), (3, 2, 2, 1));
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn csv_unterminated_quote_reports_start_line() {
    let mut pool = ValuePool::new();
    let err =
        csv::read_str("a\nok\n\"broken\n", &mut pool, csv::CsvOptions::default()).unwrap_err();
    assert!(matches!(
        err,
        TableError::UnterminatedQuote { line: 3, column: 1 }
    ));
}

#[test]
fn csv_empty_input_is_an_error() {
    let mut pool = ValuePool::new();
    assert!(matches!(
        csv::read_str("", &mut pool, csv::CsvOptions::default()),
        Err(TableError::EmptyInput)
    ));
}

#[test]
fn csv_missing_file_is_io_error() {
    let mut pool = ValuePool::new();
    let err = csv::read_path(
        "/definitely/not/here.csv",
        &mut pool,
        csv::CsvOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, TableError::Io(_)));
    assert!(err.to_string().contains("I/O error"));
}

#[test]
fn schema_mismatch_names_both_schemas() {
    let mut pool = ValuePool::new();
    let s = Table::from_rows(Schema::new(["a", "b"]), &mut pool, vec![vec!["1", "2"]]);
    let t = Table::from_rows(Schema::new(["a", "c"]), &mut pool, vec![vec!["1", "2"]]);
    let err = ProblemInstance::new(s, t, pool).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("\"b\"") && msg.contains("\"c\""), "{msg}");
}

#[test]
fn zero_attribute_instance_does_not_crash() {
    // Degenerate but legal: a schema with no attributes. All records are
    // empty tuples, so the core is the multiset minimum of the sizes.
    let mut pool = ValuePool::new();
    let mut s = Table::new(Schema::new(Vec::<String>::new()));
    let mut t = Table::new(Schema::new(Vec::<String>::new()));
    for _ in 0..3 {
        s.push(affidavit::table::Record::new(vec![]));
    }
    for _ in 0..2 {
        t.push(affidavit::table::Record::new(vec![]));
    }
    let _ = pool.intern("unused");
    let mut inst = ProblemInstance::new(s, t, pool).unwrap();
    let out = affidavit::core::Affidavit::new(affidavit::core::AffidavitConfig::paper_id())
        .explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
    assert_eq!(out.explanation.core_size(), 2);
    assert_eq!(out.explanation.deleted.len(), 1);
}

#[test]
fn single_record_tables_work() {
    let mut pool = ValuePool::new();
    let s = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["5000"]]);
    let t = Table::from_rows(Schema::new(["a"]), &mut pool, vec![vec!["5"]]);
    let mut inst = ProblemInstance::new(s, t, pool).unwrap();
    let out = affidavit::core::Affidavit::new(affidavit::core::AffidavitConfig::paper_id())
        .explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
}

#[test]
fn unicode_values_flow_through_the_whole_pipeline() {
    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..30)
        .map(|i| vec![format!("k{i}"), format!("münchen-{}", i % 5)])
        .collect();
    let rows_t: Vec<Vec<String>> = (0..30)
        .map(|i| vec![format!("k{i}"), format!("MÜNCHEN-{}", i % 5)])
        .collect();
    let s = Table::from_rows(Schema::new(["k", "city"]), &mut pool, rows_s);
    let t = Table::from_rows(Schema::new(["k", "city"]), &mut pool, rows_t);
    let mut inst = ProblemInstance::new(s, t, pool).unwrap();
    let out = affidavit::core::Affidavit::new(affidavit::core::AffidavitConfig::paper_id())
        .explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
    assert_eq!(
        out.explanation.functions[1],
        affidavit::functions::AttrFunction::Uppercase
    );
    assert_eq!(out.explanation.core_size(), 30);
}
