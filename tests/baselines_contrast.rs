//! Baseline contrast tests: the experiments that motivate the paper.
//!
//! * Key-based diff silently mis-aligns under reassigned keys; Affidavit
//!   recovers the true alignment.
//! * A similarity-only linker loses the records whose attributes were all
//!   systematically transformed; Affidavit's function learning keeps them.
//! * On small instances, the heuristic matches the brute-force optimum.

use affidavit::baselines::exact::solve_exact;
use affidavit::baselines::keyed_diff::keyed_diff;
use affidavit::baselines::linker::similarity_link;
use affidavit::baselines::sat::{reduce, Cnf, Lit};
use affidavit::core::{Affidavit, AffidavitConfig};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datasets::{by_name, synth};
use affidavit::functions::AttrFunction;
use affidavit::table::{Rational, Schema, Table, ValuePool};

#[test]
fn keyed_diff_breaks_under_reassigned_keys_affidavit_does_not() {
    let spec = by_name("bridges").unwrap();
    let (base, pool) = synth::generate(&spec, 13);
    let mut gen = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 13)).materialize_full();
    let truth = gen.reference.core_pairs().to_vec();

    // Key diff on the artificial (permuted) pk.
    let d = keyed_diff(&gen.instance, &[gen.pk_attr]);
    let key_acc = d.alignment_accuracy(&truth);
    assert!(
        key_acc < 0.1,
        "permuted keys should destroy key-based alignment, got {key_acc}"
    );

    // Affidavit without any key knowledge.
    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut gen.instance);
    let aff_hits = out
        .explanation
        .core_pairs()
        .iter()
        .filter(|p| truth.contains(p))
        .count();
    let aff_acc = aff_hits as f64 / truth.len() as f64;
    assert!(
        aff_acc > 0.9,
        "Affidavit should recover the alignment, got {aff_acc}"
    );
}

#[test]
fn similarity_linker_loses_transformed_records() {
    // Two attributes: one stable group column with duplicates, one rescaled
    // amount. Within a group, similarity alone cannot tell records apart,
    // while the learned x/1000 can. Target rows are stored in a scrambled
    // order so positional coincidences cannot rescue the linker.
    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..40)
        .map(|i| vec![format!("g{}", i % 8), format!("{}", (i + 1) * 1000)])
        .collect();
    // Target position j holds the (transformed) source record perm[j].
    let perm: Vec<usize> = (0..40).map(|j| (j * 13 + 5) % 40).collect();
    let rows_t: Vec<Vec<String>> = perm
        .iter()
        .map(|&i| vec![format!("g{}", i % 8), format!("{}", i + 1)])
        .collect();
    let s = Table::from_rows(Schema::new(["grp", "amount"]), &mut pool, rows_s);
    let t = Table::from_rows(Schema::new(["grp", "amount"]), &mut pool, rows_t);
    let mut inst = affidavit::core::ProblemInstance::new(s, t, pool).unwrap();

    let truth: Vec<_> = perm
        .iter()
        .enumerate()
        .map(|(j, &i)| {
            (
                affidavit::table::RecordId(i as u32),
                affidavit::table::RecordId(j as u32),
            )
        })
        .collect();
    let link = similarity_link(&inst, 100_000);
    let link_recall = link.alignment_recall(&truth);

    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
    let aff_hits = out
        .explanation
        .core_pairs()
        .iter()
        .filter(|p| truth.contains(p))
        .count();
    let aff_recall = aff_hits as f64 / truth.len() as f64;
    assert!(
        aff_recall > link_recall,
        "function learning should beat similarity-only linking: {aff_recall} vs {link_recall}"
    );
    assert_eq!(aff_recall, 1.0, "the learned x/1000 disambiguates groups");
}

#[test]
fn heuristic_matches_exact_optimum_on_small_instance() {
    // Per §4.2 the search assumes at least one unchanged attribute; give
    // the instance a stable key column alongside the two transformed ones.
    let mut pool = ValuePool::new();
    let s = Table::from_rows(
        Schema::new(["key", "Val", "Org"]),
        &mut pool,
        vec![
            vec!["a", "1000", "ibm"],
            vec!["b", "2000", "sap"],
            vec!["c", "3000", "ibm"],
            vec!["d", "9999", "del"],
        ],
    );
    let t = Table::from_rows(
        Schema::new(["key", "Val", "Org"]),
        &mut pool,
        vec![
            vec!["a", "1", "IBM"],
            vec!["b", "2", "SAP"],
            vec!["c", "3", "IBM"],
            vec!["e", "7", "INS"],
        ],
    );
    let mut inst = affidavit::core::ProblemInstance::new(s, t, pool).unwrap();

    // Exact optimum over a hand-picked candidate space.
    let div1000 = AttrFunction::Scale(Rational::new(1, 1000).unwrap());
    let candidates = vec![
        vec![AttrFunction::Identity],
        vec![AttrFunction::Identity, div1000.clone()],
        vec![AttrFunction::Identity, AttrFunction::Uppercase],
    ];
    let exact = solve_exact(&mut inst, &candidates, 0.5, 10_000);

    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
    assert!(
        out.explanation.cost(0.5, 3) <= exact.cost,
        "heuristic ({}) must match or beat the restricted-space optimum ({})",
        out.explanation.cost(0.5, 3),
        exact.cost
    );
    assert_eq!(out.explanation.functions[1], div1000);
    assert_eq!(out.explanation.functions[2], AttrFunction::Uppercase);
}

#[test]
fn random_cnfs_roundtrip_through_the_reduction() {
    // Brute-force satisfiability must agree with the reduction+exact-solver
    // decision on a spread of small formulas.
    let formulas = [
        Cnf {
            num_vars: 3,
            clauses: vec![
                vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(2)],
            ],
        },
        Cnf {
            num_vars: 2,
            clauses: vec![
                vec![Lit::pos(0)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(1)],
            ],
        },
        Cnf {
            num_vars: 2,
            clauses: vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        },
    ];
    for (i, cnf) in formulas.iter().enumerate() {
        let brute = (0..(1u32 << cnf.num_vars)).any(|bits| {
            let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| bits & (1 << v) != 0).collect();
            cnf.eval(&assignment)
        });
        let mut red = reduce(cnf);
        match red.solve() {
            Some(model) => {
                assert!(
                    brute,
                    "formula {i}: reduction found a model but formula is unsat"
                );
                assert!(cnf.eval(&model), "formula {i}: extracted model is wrong");
            }
            None => assert!(!brute, "formula {i}: reduction missed a model"),
        }
    }
}
