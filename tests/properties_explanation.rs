//! Property-based tests for explanation construction (Prop. 3.6) and the
//! cost model (Defs. 3.8–3.10).

use affidavit::core::explanation::Explanation;
use affidavit::core::instance::ProblemInstance;
use affidavit::functions::AttrFunction;
use affidavit::table::{Decimal, Record, Schema, Table, ValuePool};
use proptest::prelude::*;

fn table_pair() -> impl Strategy<Value = (Vec<[u8; 2]>, Vec<[u8; 2]>)> {
    (
        prop::collection::vec(prop::array::uniform2(0u8..5), 0..25),
        prop::collection::vec(prop::array::uniform2(0u8..5), 0..25),
    )
}

fn build(rows: &[[u8; 2]], pool: &mut ValuePool) -> Table {
    let mut t = Table::new(Schema::new(["a", "b"]));
    for r in rows {
        // Numeric-friendly values so Add/Scale functions apply.
        let syms: Vec<_> = r
            .iter()
            .map(|v| pool.intern(&format!("{}", *v as u32 * 10)))
            .collect();
        t.push(Record::new(syms));
    }
    t
}

fn some_functions() -> impl Strategy<Value = (AttrFunction, AttrFunction)> {
    let f = prop_oneof![
        Just(AttrFunction::Identity),
        Just(AttrFunction::Add(Decimal::from_int(5))),
        Just(AttrFunction::Add(Decimal::from_int(-10))),
        Just(AttrFunction::Uppercase),
    ];
    (f.clone(), f)
}

proptest! {
    /// Prop. 3.6 always yields a *valid* explanation, for any function
    /// tuple and any pair of snapshots (incl. duplicates and empties).
    #[test]
    fn from_functions_is_always_valid(
        (src, tgt) in table_pair(),
        (f1, f2) in some_functions(),
    ) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::from_functions(vec![f1, f2], &mut inst);
        prop_assert!(e.validate(&mut inst).is_ok(), "{:?}", e.validate(&mut inst));
        // Partition sizes.
        prop_assert_eq!(e.deleted.len() + e.core_size(), inst.source.len());
        prop_assert_eq!(e.inserted.len() + e.core_size(), inst.target.len());
    }

    /// The core chosen by Prop. 3.6 is maximal for the identity tuple:
    /// its size equals the multiset intersection of the two tables.
    #[test]
    fn identity_core_is_multiset_intersection((src, tgt) in table_pair()) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut count = std::collections::HashMap::new();
        for (_, r) in s.iter() {
            let e = count.entry(r.to_vec()).or_insert((0i64, 0i64));
            e.0 += 1;
        }
        for (_, r) in t.iter() {
            let e = count.entry(r.to_vec()).or_insert((0, 0));
            e.1 += 1;
        }
        let expected: i64 = count.values().map(|&(a, b)| a.min(b)).sum();
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::from_functions(
            vec![AttrFunction::Identity, AttrFunction::Identity],
            &mut inst,
        );
        prop_assert_eq!(e.core_size() as i64, expected);
    }

    /// Cost formula: c(E) = 2α·|A|·|T+| + 2(1−α)·Σψ, linear in α.
    #[test]
    fn cost_is_linear_in_alpha(
        (src, tgt) in table_pair(),
        (f1, f2) in some_functions(),
        alpha in 0.0f64..1.0,
    ) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::from_functions(vec![f1, f2], &mut inst);
        let at0 = e.cost(0.0, 2);
        let at1 = e.cost(1.0, 2);
        let want = at0 + alpha * (at1 - at0);
        prop_assert!((e.cost(alpha, 2) - want).abs() < 1e-9);
        // Unit cost = midpoint scaled by 1 (α = 0.5 halves both doubles).
        prop_assert_eq!(e.cost(0.5, 2), e.cost_units(2) as f64);
    }

    /// The trivial explanation is always valid and its cost is |A|·|T|.
    #[test]
    fn trivial_explanation_invariants((src, tgt) in table_pair()) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = Explanation::trivial(&inst);
        prop_assert!(e.validate(&mut inst).is_ok());
        prop_assert_eq!(e.cost_units(2), 2 * inst.target.len() as u64);
    }
}
