//! Distributed-profiling determinism, exercised through the facade crate
//! with in-process workers (the child-process battery lives next to the
//! worker binary in `crates/dist/tests/properties_dist.rs`).
//!
//! Invariants:
//! * `profile_dirs_distributed` is byte-identical (timing stripped) to
//!   `profile_dirs` at every worker count, for both paper configurations;
//! * `explain_via` + `absorb_result` reproduce the local search's
//!   rendered report exactly — the `SymRemap` pool merge across the
//!   (simulated) process boundary loses nothing;
//! * failure semantics match: broken CSVs fail with the same messages in
//!   both modes.

use std::path::{Path, PathBuf};
use std::time::Duration;

use affidavit::core::profiling::{profile_dirs, ProfileOptions, SnapshotProfile};
use affidavit::core::report::render_report;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::dist::{
    explain_via, profile_dirs_distributed, run_worker, DistBackend, DistOptions, InProcessQueue,
    JobQueue,
};
use affidavit::table::{Schema, Table, ValuePool};

fn write_snapshots(root: &Path) -> (PathBuf, PathBuf) {
    let before = root.join("v1");
    let after = root.join("v2");
    std::fs::create_dir_all(&before).unwrap();
    std::fs::create_dir_all(&after).unwrap();
    // A rescaled column plus a constant-replaced unit column.
    let mut s = String::from("k,val,unit\n");
    let mut t = String::from("k,val,unit\n");
    for i in 0..30 {
        s.push_str(&format!("k{i},{},USD\n", (i + 1) * 1000));
        t.push_str(&format!("k{i},{},k $\n", i + 1));
    }
    std::fs::write(before.join("accounts.csv"), &s).unwrap();
    std::fs::write(after.join("accounts.csv"), &t).unwrap();
    // An unchanged table, a dropped table and a malformed pair.
    std::fs::write(before.join("static.csv"), "a,b\n1,2\n").unwrap();
    std::fs::write(after.join("static.csv"), "a,b\n1,2\n").unwrap();
    std::fs::write(before.join("old.csv"), "c\n9\n").unwrap();
    std::fs::write(before.join("bad.csv"), "a,b\n1,2\n").unwrap();
    std::fs::write(after.join("bad.csv"), "a,b\n\"unterminated\n").unwrap();
    (before, after)
}

fn canonical(mut profile: SnapshotProfile) -> String {
    profile.strip_timing();
    format!("{}\n===\n{}", profile.render(), profile.to_json())
}

#[test]
fn distributed_profile_matches_local_at_every_worker_count() {
    let root = std::env::temp_dir().join("affidavit-root-dist-test");
    std::fs::remove_dir_all(&root).ok();
    let (before, after) = write_snapshots(&root);
    for config in [
        AffidavitConfig::paper_id(),
        AffidavitConfig::paper_overlap(),
    ] {
        let popts = ProfileOptions {
            config,
            ..ProfileOptions::default()
        };
        let local = canonical(profile_dirs(&before, &after, &popts).unwrap());
        assert!(
            local.contains("FAILED"),
            "malformed pair must fail: {local}"
        );
        for workers in [1usize, 2, 4] {
            let dopts = DistOptions {
                workers,
                backend: DistBackend::InProcess,
                validate: true,
                ..DistOptions::default()
            };
            let (profile, stats) =
                profile_dirs_distributed(&before, &after, &popts, &dopts).unwrap();
            assert_eq!(stats.jobs, 2, "accounts + static are dispatchable");
            assert!(
                stats.steals >= stats.jobs,
                "every dispatched job is claimed at least once: {stats:?}"
            );
            assert_eq!(stats.conflicts, 0, "{stats:?}");
            assert_eq!(canonical(profile), local, "workers={workers} diverged");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn remote_explanation_renders_byte_identically() {
    let build = || {
        let mut pool = ValuePool::new();
        let s = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            (0..25).map(|i| vec![format!("{}", (i + 1) * 1000), "USD".to_owned()]),
        );
        let t = Table::from_rows(
            Schema::new(["Val", "Unit"]),
            &mut pool,
            (0..25).map(|i| vec![format!("{}", i + 1), "k $".to_owned()]),
        );
        ProblemInstance::new(s, t, pool).unwrap()
    };
    let cfg = AffidavitConfig::paper_id();

    let mut local = build();
    let outcome = Affidavit::new(cfg.clone()).explain(&mut local);
    let local_report = render_report(&outcome.explanation, &local);

    let queue = InProcessQueue::new();
    let mut remote_instance = build();
    let remote = std::thread::scope(|scope| {
        scope.spawn(|| run_worker(&queue, "w0", Duration::from_millis(1)));
        let remote = explain_via(&queue, &mut remote_instance, &cfg, Duration::from_secs(120));
        queue.request_shutdown().unwrap();
        remote
    })
    .unwrap();
    // The worker interned the learned constant "k $"-style parameters into
    // *its* pool; after the SymRemap merge the coordinator renders the
    // exact same bytes.
    assert_eq!(
        render_report(&remote.explanation, &remote_instance),
        local_report
    );
    assert_eq!(remote.polled, outcome.stats.polled);
    assert_eq!(remote.expansions, outcome.stats.expansions);
    // And the merged pool evolved exactly as the local search's pool did.
    assert_eq!(remote_instance.pool.len(), local.pool.len());
}
