//! Property-based tests for the blocking substrate: refinement order
//! independence, lower-bound correctness, and alignment discipline.

use affidavit::blocking::{sample_random_alignment, Blocking};
use affidavit::functions::{ApplyScratch, AttrFunction};
use affidavit::table::{AttrId, Record, Schema, Table, ValuePool};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate a pair of small tables over a fixed 3-attribute schema with
/// values from tight domains (so blocks actually collide).
fn table_pair() -> impl Strategy<Value = (Vec<[u8; 3]>, Vec<[u8; 3]>)> {
    (
        prop::collection::vec(prop::array::uniform3(0u8..4), 1..30),
        prop::collection::vec(prop::array::uniform3(0u8..4), 1..30),
    )
}

fn build(rows: &[[u8; 3]], pool: &mut ValuePool) -> Table {
    let mut t = Table::new(Schema::new(["a", "b", "c"]));
    for r in rows {
        let syms: Vec<_> = r.iter().map(|v| pool.intern(&format!("v{v}"))).collect();
        t.push(Record::new(syms));
    }
    t
}

/// Canonical multiset of block shapes for comparison.
fn shape(b: &Blocking) -> Vec<(usize, usize)> {
    let mut s: Vec<(usize, usize)> = b
        .blocks
        .iter()
        .map(|blk| (blk.src.len(), blk.tgt.len()))
        .filter(|&(s, t)| s + t > 0)
        .collect();
    s.sort();
    s
}

proptest! {
    /// Refining on attributes in different orders yields the same final
    /// partition (blocking is set-valued, order is an implementation detail).
    #[test]
    fn refinement_is_order_independent((src, tgt) in table_pair()) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let refine_all = |order: [u32; 3], pool: &mut ValuePool| {
            let mut b = Blocking::root(&s, &t);
            for a in order {
                let mut scratch = ApplyScratch::new();
                b = b.refine(AttrId(a), &AttrFunction::Identity, &mut scratch, &s, &t, pool);
            }
            b
        };
        let b1 = refine_all([0, 1, 2], &mut pool);
        let b2 = refine_all([2, 0, 1], &mut pool);
        prop_assert_eq!(shape(&b1), shape(&b2));
    }

    /// ct/cs from blocking are true lower bounds: under full identity
    /// refinement they equal the exact unmatched counts of the identity
    /// explanation, and coarser blockings never exceed them.
    #[test]
    fn bounds_are_monotone_under_refinement((src, tgt) in table_pair()) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut b = Blocking::root(&s, &t);
        let mut prev_ct = b.ct();
        let mut prev_cs = b.cs();
        for a in 0..3u32 {
            let mut scratch = ApplyScratch::new();
            b = b.refine(AttrId(a), &AttrFunction::Identity, &mut scratch, &s, &t, &mut pool);
            // Splitting blocks can only expose more surplus, never less.
            prop_assert!(b.ct() >= prev_ct, "ct shrank under refinement");
            prop_assert!(b.cs() >= prev_cs, "cs shrank under refinement");
            prev_ct = b.ct();
            prev_cs = b.cs();
        }
        // Fully refined: surplus = exact multiset difference of tuples.
        let count = |table: &Table| {
            let mut m = std::collections::HashMap::new();
            for (_, r) in table.iter() {
                *m.entry(r.to_vec()).or_insert(0i64) += 1;
            }
            m
        };
        let cs_map = count(&s);
        let ct_map = count(&t);
        let mut expect_ct = 0u64;
        for (k, &n) in &ct_map {
            let m = cs_map.get(k).copied().unwrap_or(0);
            expect_ct += (n - m).max(0) as u64;
        }
        let mut expect_cs = 0u64;
        for (k, &n) in &cs_map {
            let m = ct_map.get(k).copied().unwrap_or(0);
            expect_cs += (n - m).max(0) as u64;
        }
        prop_assert_eq!(b.ct(), expect_ct);
        prop_assert_eq!(b.cs(), expect_cs);
    }

    /// Parallel refinement over blocks is byte-identical to the serial
    /// path — block order, record order, dead sources and pool contents —
    /// at every thread count, over random table pairs.
    #[test]
    fn parallel_refine_equals_serial((src, tgt) in table_pair()) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        // Partition on attr 0 first so several blocks exist to fan out.
        let base = Blocking::root(&s, &t).refine(
            AttrId(0), &AttrFunction::Identity, &mut ApplyScratch::new(), &s, &t, &mut pool,
        );
        let mut serial_pool = pool.clone();
        let serial = base.refine(
            AttrId(1), &AttrFunction::Identity, &mut ApplyScratch::new(), &s, &t, &mut serial_pool,
        );
        let exact = |b: &Blocking| {
            (
                b.blocks.iter().map(|blk| (blk.src.clone(), blk.tgt.clone())).collect::<Vec<_>>(),
                b.dead_src.clone(),
            )
        };
        for threads in [1usize, 2, 4, 8] {
            let mut par_pool = pool.clone();
            let handle = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel = handle.install(|| {
                base.refine_parallel(AttrId(1), &AttrFunction::Identity, &s, &t, &mut par_pool)
            });
            prop_assert_eq!(exact(&serial), exact(&parallel), "threads {}", threads);
            let serial_strings: Vec<String> =
                serial_pool.iter().map(|(_, v)| v.to_owned()).collect();
            let par_strings: Vec<String> =
                par_pool.iter().map(|(_, v)| v.to_owned()).collect();
            prop_assert_eq!(serial_strings, par_strings, "pool diverged at {} threads", threads);
        }
    }

    /// Random alignments pair each record at most once and only within a
    /// block, with exactly min(|src|, |tgt|) pairs per block.
    #[test]
    fn alignment_discipline((src, tgt) in table_pair(), seed in 0u64..1000) {
        let mut pool = ValuePool::new();
        let s = build(&src, &mut pool);
        let t = build(&tgt, &mut pool);
        let mut scratch = ApplyScratch::new();
        let b = Blocking::root(&s, &t)
            .refine(AttrId(0), &AttrFunction::Identity, &mut scratch, &s, &t, &mut pool);
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = sample_random_alignment(&b, &mut rng);
        let expected: usize = b.mixed_blocks().map(|blk| blk.src.len().min(blk.tgt.len())).sum();
        prop_assert_eq!(pairs.len(), expected);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for (sid, tid) in pairs {
            prop_assert!(seen_s.insert(sid), "source paired twice");
            prop_assert!(seen_t.insert(tid), "target paired twice");
            // Same block ⇒ same attr-0 value.
            prop_assert_eq!(s.value(sid, AttrId(0)), t.value(tid, AttrId(0)));
        }
    }
}
