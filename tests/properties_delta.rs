//! Incremental re-profiling (`--delta`) differential battery.
//!
//! The load-bearing invariant of `core::delta`: for every input and
//! every edit, a delta run's output bytes equal a from-scratch run's
//! output bytes — a fingerprint mismatch may only ever cost a redo,
//! never a wrong answer. The battery fuzzes snapshot edits (row
//! insert/delete, cell edits, reorders, block-boundary edits, and
//! byte-level no-op rewrites like CRLF and quoting) across both paper
//! configurations × threads {1, 4} × {ram, disk} pools, and also checks
//! the redo path's *pool state* against a from-scratch staging — not
//! just the rendered report. Separately: the streaming fingerprint is
//! chunking-invariant, and a corrupted manifest falls back to a full
//! redo (correct bytes, `fallbacks` bumped) instead of failing.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use affidavit::core::delta::{
    config_fingerprint, default_explain_state, default_profile_state, explain_delta,
    profile_dirs_delta,
};
use affidavit::core::profiling::{profile_dirs, stage_file_pair, ProfileOptions, SnapshotProfile};
use affidavit::core::report::render_report;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::store::{
    fingerprint_bytes, fingerprint_file, Fnv, IngestOptions, PoolBackend, PoolConfig,
};
use proptest::prelude::*;

/// A fresh per-test scratch directory (tests in this file run in
/// parallel under the default harness).
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "affidavit-delta-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A seeded snapshot pair with a systematic change (rescaled values),
/// deletions and an insertion, so the report has every section.
fn write_pair(dir: &Path, seed: u64) -> (PathBuf, PathBuf) {
    let src = dir.join("source.csv");
    let tgt = dir.join("target.csv");
    let rows = 24 + (seed % 13) as usize;
    let mut s = String::from("k,v,w\n");
    let mut t = String::from("k,v,w\n");
    for i in 0..rows {
        s.push_str(&format!("k{i},{},tag{}\n", (i as u64 + seed) * 1000, i % 5));
        if (i as u64 + seed) % 11 != 10 {
            t.push_str(&format!("k{i},{},tag{}\n", i as u64 + seed, i % 5));
        }
    }
    t.push_str(&format!("extra{seed},7,tagx\n"));
    std::fs::write(&src, s).unwrap();
    std::fs::write(&tgt, t).unwrap();
    (src, tgt)
}

/// The battery's dimension sweep, driven off seed bits: both paper
/// configurations × threads {1, 4} × {ram, disk} pools.
fn opts_for(seed: u64) -> ProfileOptions {
    let mut config = if seed & 1 == 0 {
        AffidavitConfig::paper_id()
    } else {
        AffidavitConfig::paper_overlap()
    };
    config.threads = if seed & 2 == 0 { 1 } else { 4 };
    let pool = if seed & 4 == 0 {
        PoolConfig::default()
    } else {
        // Tiny budget so the disk backend actually spills.
        PoolConfig {
            backend: PoolBackend::Disk,
            budget_bytes: 4096,
        }
    };
    ProfileOptions {
        config,
        align: false,
        ingest: IngestOptions::default(),
        pool,
        executor: None,
    }
}

/// Every interned string in pool order — the redo path must leave the
/// instance's pool exactly as a from-scratch staging + search would.
fn pool_dump(instance: &ProblemInstance) -> String {
    let mut out = String::new();
    for (sym, s) in instance.pool.iter() {
        out.push_str(&sym.0.to_string());
        out.push('=');
        out.push_str(s);
        out.push('\u{1}');
    }
    out
}

/// The from-scratch path for the same inputs: stage + search + render,
/// exactly what a non-delta `affidavit explain` runs in-process.
fn from_scratch(src: &Path, tgt: &Path, opts: &ProfileOptions) -> (String, u64, u64, String) {
    let mut instance = stage_file_pair(src, tgt, opts).expect("stage");
    let out = Affidavit::new(opts.config.clone()).explain(&mut instance);
    let report = render_report(&out.explanation, &instance);
    (
        report,
        out.stats.polled as u64,
        out.stats.states_generated as u64,
        pool_dump(&instance),
    )
}

/// One snapshot edit, chosen by `kind`. Kinds 0–4 change the staged
/// records (the delta run must redo); kinds 5–6 rewrite bytes without
/// changing any record (the delta run must still splice).
fn apply_edit(kind: u64, seed: u64, text: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let data = lines.len() - 1; // line 0 is the header
    let pos = 1 + (seed as usize % data);
    let edit_cell = |line: &str, field: usize, suffix: &str| -> String {
        let mut fields: Vec<String> = line.split(',').map(str::to_owned).collect();
        fields[field].push_str(suffix);
        fields.join(",")
    };
    match kind {
        // Row insert at an arbitrary position.
        0 => lines.insert(pos, format!("ins{seed},42,tagi")),
        // Row delete.
        1 => {
            lines.remove(pos);
        }
        // Cell edit (value column).
        2 => lines[pos] = edit_cell(&lines[pos], 1, "9"),
        // Reorder: rotate the data rows — record ids shift everywhere.
        3 => lines[1..].rotate_left(1),
        // Block-boundary edits: the first and last data rows sit on
        // fingerprint-group boundaries; editing the tag column also
        // changes the blocking partition itself.
        4 => {
            let last = lines.len() - 1;
            lines[1] = edit_cell(&lines[1], 2, "b");
            lines[last] = edit_cell(&lines[last], 2, "b");
        }
        // CRLF rewrite: new raw bytes, identical records.
        5 => return text.replace('\n', "\r\n"),
        // Quoting rewrite: every field quoted, identical records.
        6 => {
            for line in &mut lines {
                *line = line
                    .split(',')
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(",");
            }
        }
        other => panic!("unknown edit kind {other}"),
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

proptest! {
    /// The tentpole invariant, fuzzed: delta output bytes == from-scratch
    /// output bytes, cold (no manifest), warm (splice) and after every
    /// edit kind; the redo path additionally leaves an identical pool.
    #[test]
    fn delta_is_byte_identical_under_edits(seed in 0u64..1_000_000) {
        let kind = seed % 7;
        let pair_seed = seed / 7;
        let dir = temp_dir("fuzz");
        let (src, tgt) = write_pair(&dir, pair_seed);
        let opts = opts_for(seed);
        let state = default_explain_state(&tgt);

        // Cold: no manifest yet — a full redo with identical bytes.
        let (report1, polled1, generated1, pool1) = from_scratch(&src, &tgt, &opts);
        let cold = explain_delta(&src, &tgt, &opts, &state).unwrap();
        prop_assert!(!cold.spliced);
        prop_assert_eq!(&cold.report, &report1);
        prop_assert_eq!(cold.polled, polled1);
        prop_assert_eq!(cold.generated, generated1);
        prop_assert_eq!(pool_dump(cold.instance.as_ref().unwrap()), pool1);
        prop_assert_eq!(cold.stats.fallbacks, 0);

        // Warm: everything clean — a splice with identical bytes.
        let warm = explain_delta(&src, &tgt, &opts, &state).unwrap();
        prop_assert!(warm.spliced);
        prop_assert_eq!(&warm.report, &report1);
        prop_assert_eq!((warm.polled, warm.generated), (polled1, generated1));
        prop_assert_eq!(warm.stats.blocks_redone, 0);
        prop_assert_eq!(warm.stats.fallbacks, 0);

        // Edited: still byte-identical to a from-scratch run over the
        // edited pair, splicing exactly when no record changed.
        let text = std::fs::read_to_string(&tgt).unwrap();
        std::fs::write(&tgt, apply_edit(kind, pair_seed, &text)).unwrap();
        let (report2, polled2, generated2, pool2) = from_scratch(&src, &tgt, &opts);
        let delta = explain_delta(&src, &tgt, &opts, &state).unwrap();
        prop_assert_eq!(&delta.report, &report2);
        prop_assert_eq!(delta.polled, polled2);
        prop_assert_eq!(delta.generated, generated2);
        prop_assert_eq!(delta.stats.fallbacks, 0, "data dirt is a redo, not a fallback");
        if kind >= 5 {
            prop_assert!(
                delta.spliced,
                "a byte-level no-op rewrite (kind {}) must splice",
                kind
            );
        } else {
            prop_assert!(!delta.spliced, "edit kind {} must force a redo", kind);
            prop_assert_eq!(pool_dump(delta.instance.as_ref().unwrap()), pool2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The streaming fingerprint is split-invariant: hashing any
/// chunk-boundary decomposition of the same bytes — or the same bytes
/// through a file — yields the fingerprint of the whole.
#[test]
fn fingerprints_are_chunking_invariant() {
    let data: Vec<u8> = (0..10_000u32)
        .flat_map(|i| format!("row{i},\"quo\"\"ted\",\r\n\u{e9}").into_bytes())
        .collect();
    let whole = fingerprint_bytes(&data);
    for splits in [
        vec![0usize],
        vec![1],
        vec![7, 7],
        vec![data.len() / 2],
        vec![data.len() - 1],
        vec![data.len()],
        vec![64 * 1024, 64 * 1024], // the file reader's chunk size
    ] {
        let mut fnv = Fnv::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            let cut = s.min(rest.len());
            fnv.update(&rest[..cut]);
            rest = &rest[cut..];
        }
        fnv.update(rest);
        assert_eq!(
            fnv.finish(),
            whole,
            "a chunk boundary changed the fingerprint"
        );
    }
    let dir = temp_dir("fp");
    let path = dir.join("blob.bin");
    std::fs::write(&path, &data).unwrap();
    assert_eq!(fingerprint_file(&path).unwrap(), whole);
    std::fs::remove_dir_all(&dir).ok();

    // The length prefix in `update_str` keeps concatenation ambiguity
    // out of composite fingerprints: ("ab","c") != ("a","bc").
    let mut one = Fnv::new();
    one.update_str("ab");
    one.update_str("c");
    let mut two = Fnv::new();
    two.update_str("a");
    two.update_str("bc");
    assert_ne!(one.finish(), two.finish());

    // Fingerprints round-trip through their manifest string form.
    let printed = whole.to_string();
    assert_eq!(
        printed.parse::<affidavit::store::Fingerprint>().unwrap(),
        whole
    );
}

/// A corrupted or stale manifest must never produce a wrong answer or a
/// failure: the run falls back to a full redo (`fallbacks` bumped),
/// returns correct bytes, and rewrites the manifest so the *next* run
/// splices again.
#[test]
fn a_broken_manifest_falls_back_to_a_correct_redo() {
    let dir = temp_dir("broken");
    let (src, tgt) = write_pair(&dir, 3);
    let opts = opts_for(0);
    let state = default_explain_state(&tgt);
    let (report, ..) = from_scratch(&src, &tgt, &opts);

    explain_delta(&src, &tgt, &opts, &state).unwrap();
    for corruption in ["{not json", "", "{\"version\":999}"] {
        std::fs::write(&state, corruption).unwrap();
        let out = explain_delta(&src, &tgt, &opts, &state).unwrap();
        assert!(
            !out.spliced,
            "a broken manifest must not splice: {corruption:?}"
        );
        assert_eq!(
            out.stats.fallbacks, 1,
            "corruption {corruption:?} must count as a fallback"
        );
        assert_eq!(out.report, report);
        // The redo rewrote the manifest: the next run splices again.
        let next = explain_delta(&src, &tgt, &opts, &state).unwrap();
        assert!(next.spliced);
        assert_eq!(next.report, report);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A manifest recorded under one pool backend splices under the other:
/// the config fingerprint deliberately excludes byte-transparent knobs
/// (pool backend, ingest chunking), and only them.
#[test]
fn the_manifest_is_portable_across_byte_transparent_knobs() {
    let dir = temp_dir("portable");
    let (src, tgt) = write_pair(&dir, 9);
    let ram = opts_for(0);
    let mut disk = opts_for(0);
    disk.pool = PoolConfig {
        backend: PoolBackend::Disk,
        budget_bytes: 4096,
    };
    disk.ingest.chunk_rows = 3;
    assert_eq!(
        config_fingerprint(&ram.config, ram.align),
        config_fingerprint(&disk.config, disk.align)
    );
    let mut threads4 = opts_for(0);
    threads4.config.threads = 4;
    assert_ne!(
        config_fingerprint(&ram.config, ram.align),
        config_fingerprint(&threads4.config, threads4.align),
        "search-shaping knobs must invalidate the manifest"
    );

    let state = default_explain_state(&tgt);
    let cold = explain_delta(&src, &tgt, &ram, &state).unwrap();
    let warm = explain_delta(&src, &tgt, &disk, &state).unwrap();
    assert!(
        warm.spliced,
        "a ram-recorded manifest must splice under the disk backend"
    );
    assert_eq!(warm.report, cold.report);
    std::fs::remove_dir_all(&dir).ok();
}

/// Directory-level sweep: `profile --delta` renders byte-identically
/// (timing stripped) to `profile_dirs` across both paper configurations
/// × both pool backends, redoing exactly the edited table.
#[test]
fn profile_delta_matches_from_scratch_across_the_matrix() {
    let canonical = |mut p: SnapshotProfile| {
        p.strip_timing();
        format!("{}\n{}", p.render(), p.to_json())
    };
    for seed in [0u64, 1, 4, 5] {
        let opts = opts_for(seed);
        let dir = temp_dir("matrix");
        let before = dir.join("before");
        let after = dir.join("after");
        std::fs::create_dir_all(&before).unwrap();
        std::fs::create_dir_all(&after).unwrap();
        for t in 0..3u64 {
            let sub = temp_dir("matrix-pair");
            let (src, tgt) = write_pair(&sub, seed * 10 + t);
            std::fs::rename(&src, before.join(format!("table{t}.csv"))).unwrap();
            std::fs::rename(&tgt, after.join(format!("table{t}.csv"))).unwrap();
            std::fs::remove_dir_all(&sub).ok();
        }
        let state = default_profile_state(&after);
        let (seeded, _) = profile_dirs_delta(&before, &after, &opts, &state).unwrap();
        assert_eq!(
            canonical(seeded),
            canonical(profile_dirs(&before, &after, &opts).unwrap())
        );

        // Edit one table; the delta rerun redoes exactly that pair and
        // still matches a from-scratch profile byte-for-byte.
        let edited_path = after.join("table1.csv");
        let text = std::fs::read_to_string(&edited_path).unwrap();
        std::fs::write(&edited_path, apply_edit(0, seed, &text)).unwrap();
        let (delta, stats) = profile_dirs_delta(&before, &after, &opts, &state).unwrap();
        assert_eq!(
            canonical(delta),
            canonical(profile_dirs(&before, &after, &opts).unwrap()),
            "divergence at seed {seed}"
        );
        assert_eq!(stats.pairs_redone, 1);
        assert_eq!(stats.pairs_spliced, 2);
        assert_eq!(stats.fallbacks, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
