//! Adversarial and degenerate problem instances: the search must stay
//! robust (valid explanations, no panics, sensible fallbacks) on inputs far
//! outside the evaluation protocol's comfortable shapes.

use affidavit::core::explanation::Explanation;
use affidavit::core::{Affidavit, AffidavitConfig, InitStrategy, ProblemInstance};
use affidavit::table::{Schema, Table, ValuePool};

fn instance(src: Vec<Vec<&str>>, tgt: Vec<Vec<&str>>, cols: &[&str]) -> ProblemInstance {
    let mut pool = ValuePool::new();
    let schema = Schema::new(cols.iter().copied());
    let s = Table::from_rows(schema.clone(), &mut pool, src);
    let t = Table::from_rows(schema, &mut pool, tgt);
    ProblemInstance::new(s, t, pool).expect("valid instance")
}

fn explain(inst: &mut ProblemInstance) -> Explanation {
    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(inst);
    out.explanation.validate(inst).expect("valid explanation");
    out.explanation
}

#[test]
fn identical_snapshots_cost_zero() {
    let rows = vec![
        vec!["a", "1", "x"],
        vec!["b", "2", "y"],
        vec!["c", "3", "z"],
    ];
    let mut inst = instance(rows.clone(), rows, &["k", "n", "s"]);
    let e = explain(&mut inst);
    assert_eq!(e.cost_units(inst.arity()), 0);
    assert_eq!(e.core_size(), 3);
    assert!(e.functions.iter().all(|f| f.is_identity()));
}

#[test]
fn completely_disjoint_snapshots_fall_back_to_trivial() {
    let src = (0..12)
        .map(|i| vec![format!("s{i}"), format!("{}", i * 3)])
        .collect::<Vec<_>>();
    let tgt = (0..12)
        .map(|i| vec![format!("other{i}"), format!("x{}", 1000 + i)])
        .collect::<Vec<_>>();
    let mut pool = ValuePool::new();
    let schema = Schema::new(["a", "b"]);
    let s = Table::from_rows(schema.clone(), &mut pool, src);
    let t = Table::from_rows(schema, &mut pool, tgt);
    let mut inst = ProblemInstance::new(s, t, pool).unwrap();
    let e = explain(&mut inst);
    let trivial = Explanation::trivial(&inst).cost_units(inst.arity());
    assert!(e.cost_units(inst.arity()) <= trivial);
    // Nothing can genuinely align: the core must stay empty (anything else
    // would need value maps costing more than insertions).
    assert_eq!(e.core_size(), 0, "core pairs: {:?}", e.core_pairs());
}

#[test]
fn empty_target_means_everything_deleted() {
    let src = vec![vec!["a", "1"], vec!["b", "2"]];
    let mut inst = instance(src, Vec::new(), &["k", "v"]);
    let e = explain(&mut inst);
    assert_eq!(e.deleted.len(), 2);
    assert_eq!(e.inserted.len(), 0);
    assert_eq!(e.core_size(), 0);
}

#[test]
fn empty_source_means_everything_inserted() {
    let tgt = vec![vec!["a", "1"], vec!["b", "2"]];
    let mut inst = instance(Vec::new(), tgt, &["k", "v"]);
    let e = explain(&mut inst);
    assert_eq!(e.deleted.len(), 0);
    assert_eq!(e.inserted.len(), 2);
}

#[test]
fn both_snapshots_empty() {
    let mut inst = instance(Vec::new(), Vec::new(), &["k", "v"]);
    let e = explain(&mut inst);
    assert_eq!(e.cost_units(inst.arity()), 0);
}

#[test]
fn single_record_pair_aligns() {
    let mut inst = instance(
        vec![vec!["k1", "500", "IBM"]],
        vec![vec!["k1", "0.5", "IBM"]],
        &["k", "v", "org"],
    );
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 1);
}

#[test]
fn duplicate_rows_use_multiset_semantics() {
    // Three identical source rows, two identical target rows: exactly two
    // can be explained as core, one must be deleted.
    let src = vec![
        vec!["dup", "1"],
        vec!["dup", "1"],
        vec!["dup", "1"],
        vec!["other", "2"],
    ];
    let tgt = vec![vec!["dup", "1"], vec!["dup", "1"], vec!["other", "2"]];
    let mut inst = instance(src, tgt, &["k", "v"]);
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 3);
    assert_eq!(e.deleted.len(), 1);
    assert_eq!(e.inserted.len(), 0);
}

#[test]
fn unicode_values_survive_the_whole_pipeline() {
    let src = vec![
        vec!["münchen", "100", "日本語"],
        vec!["köln", "200", "中文"],
        vec!["zürich", "300", "한국어"],
        vec!["graz", "400", "ελληνικά"],
    ];
    let tgt = vec![
        vec!["MÜNCHEN", "1", "日本語"],
        vec!["KÖLN", "2", "中文"],
        vec!["ZÜRICH", "3", "한국어"],
        vec!["GRAZ", "4", "ελληνικά"],
    ];
    let mut inst = instance(src, tgt, &["city", "v", "lang"]);
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 4);
    assert!(e
        .functions
        .iter()
        .any(|f| matches!(f, affidavit::functions::AttrFunction::Uppercase)));
}

#[test]
fn wide_table_smoke() {
    // 60 columns, 30 rows; one scaled column, the rest identity.
    let cols: Vec<String> = (0..60).map(|c| format!("c{c}")).collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut pool = ValuePool::new();
    let schema = Schema::new(col_refs.iter().copied());
    let mk = |scale: bool| -> Vec<Vec<String>> {
        (0..30usize)
            .map(|r| {
                (0..60usize)
                    .map(|c| {
                        let v = (r * 61 + c * 7) % 19;
                        if c == 5 && scale {
                            format!("{}", v * 100)
                        } else {
                            format!("{v}")
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let s = Table::from_rows(schema.clone(), &mut pool, mk(true));
    let t = Table::from_rows(schema, &mut pool, mk(false));
    let mut inst = ProblemInstance::new(s, t, pool).unwrap();
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 30);
}

#[test]
fn asymmetric_sizes_are_handled() {
    // |S| >> |T| and |T| >> |S| both produce valid explanations.
    let big: Vec<Vec<String>> = (0..40)
        .map(|i| vec![format!("k{i}"), format!("{i}")])
        .collect();
    let small: Vec<Vec<String>> = (0..5)
        .map(|i| vec![format!("k{i}"), format!("{i}")])
        .collect();
    for (a, b) in [(big.clone(), small.clone()), (small, big)] {
        let mut pool = ValuePool::new();
        let schema = Schema::new(["k", "v"]);
        let s = Table::from_rows(schema.clone(), &mut pool, a);
        let t = Table::from_rows(schema, &mut pool, b);
        let mut inst = ProblemInstance::new(s, t, pool).unwrap();
        let e = explain(&mut inst);
        assert_eq!(e.core_size(), 5);
    }
}

#[test]
fn all_init_strategies_survive_degenerate_inputs() {
    for init in [InitStrategy::Empty, InitStrategy::Id, InitStrategy::Overlap] {
        let mut inst = instance(
            vec![vec!["x", ""], vec!["", "y"]],
            vec![vec!["", ""], vec!["x", "y"]],
            &["a", "b"],
        );
        let mut cfg = AffidavitConfig::paper_id();
        cfg.init = init;
        let out = Affidavit::new(cfg).explain(&mut inst);
        out.explanation
            .validate(&mut inst)
            .unwrap_or_else(|e| panic!("{init:?}: {e}"));
    }
}

#[test]
fn pathological_identical_values_everywhere() {
    // Every cell identical: blocking gives one giant block; multiset core
    // must still come out right.
    let rows =
        |n: usize| -> Vec<Vec<&'static str>> { (0..n).map(|_| vec!["same", "same"]).collect() };
    let mut inst = instance(rows(10), rows(7), &["a", "b"]);
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 7);
    assert_eq!(e.deleted.len(), 3);
}

#[test]
fn values_containing_csv_metacharacters() {
    let src = vec![
        vec!["a,b", "line\nbreak", "quote\"inside"],
        vec!["c,d", "tab\there", "both\",\""],
    ];
    let tgt = vec![
        vec!["a,b", "line\nbreak", "quote\"inside"],
        vec!["c,d", "tab\there", "both\",\""],
    ];
    let mut inst = instance(src, tgt, &["x", "y", "z"]);
    let e = explain(&mut inst);
    assert_eq!(e.core_size(), 2);
    assert_eq!(e.cost_units(inst.arity()), 0);
}
