//! Serve-vs-one-shot byte-identity battery.
//!
//! The resident daemon's determinism contract: a served explain renders
//! **exactly** the bytes the one-shot CLI path produces for the same
//! inputs and configuration — cold or warm, at any thread count, over
//! either pool backend, under concurrent clients. The battery sweeps
//! both paper configurations × threads {1, 4} × {ram, disk} pools, then
//! hammers one spec with 4 concurrent clients, and asserts throughout
//! (via the daemon's counters) that warm repeats perform zero ingestion
//! work.

use std::path::{Path, PathBuf};

use affidavit_core::profiling::{stage_file_pair, ProfileOptions};
use affidavit_core::report::render_report;
use affidavit_core::{Affidavit, AffidavitConfig};
use affidavit_serve::{serve, ExplainSpec, ServeClient, ServeOptions};
use affidavit_store::{IngestOptions, PoolConfig};

/// A snapshot pair with a systematic change (rescaled values), plus some
/// deletions and insertions so the report has every section.
fn write_pair(dir: &Path) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let src = dir.join("source.csv");
    let tgt = dir.join("target.csv");
    let mut s = String::from("k,v,w\n");
    let mut t = String::from("k,v,w\n");
    for i in 0..60 {
        s.push_str(&format!("k{i},{},tag{}\n", i * 1000, i % 7));
        if i % 11 != 10 {
            t.push_str(&format!("k{i},{i},tag{}\n", i % 7));
        }
    }
    t.push_str("extra,1,tagx\n");
    std::fs::write(&src, s).unwrap();
    std::fs::write(&tgt, t).unwrap();
    (src, tgt)
}

fn spec_for(src: &Path, tgt: &Path, config: &str, threads: usize, backend: &str) -> ExplainSpec {
    let mut cfg = match config {
        "id" => AffidavitConfig::paper_id(),
        "overlap" => AffidavitConfig::paper_overlap(),
        other => panic!("unknown config {other}"),
    };
    cfg.threads = threads;
    ExplainSpec {
        config: cfg,
        pool_backend: backend.to_owned(),
        pool_budget_bytes: 4096, // tiny, so the disk backend actually spills
        ..ExplainSpec::new(src.to_str().unwrap(), tgt.to_str().unwrap())
    }
}

/// The one-shot path for the same spec: ingest + stage + search +
/// render, exactly what `affidavit explain` runs in-process.
fn one_shot(spec: &ExplainSpec) -> (String, u64, u64) {
    let opts = ProfileOptions {
        config: spec.config.clone(),
        align: spec.align,
        ingest: IngestOptions {
            chunk_rows: spec.ingest_chunk_rows,
            threads: spec.config.threads,
            ..IngestOptions::default()
        },
        pool: PoolConfig {
            backend: spec.pool_backend.parse().unwrap(),
            budget_bytes: spec.pool_budget_bytes,
        },
        executor: None,
    };
    let mut instance =
        stage_file_pair(Path::new(&spec.source), Path::new(&spec.target), &opts).unwrap();
    let outcome = Affidavit::new(spec.config.clone()).explain(&mut instance);
    (
        render_report(&outcome.explanation, &instance),
        outcome.stats.polled as u64,
        outcome.stats.states_generated as u64,
    )
}

#[test]
fn served_reports_match_one_shot_across_the_matrix() {
    let dir = std::env::temp_dir().join("affidavit-serve-battery");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());

    let mut requests = 0u64;
    for config in ["id", "overlap"] {
        for threads in [1usize, 4] {
            for backend in ["ram", "disk"] {
                let spec = spec_for(&src, &tgt, config, threads, backend);
                let (report, polled, generated) = one_shot(&spec);
                let reply = client.explain(&spec).unwrap();
                requests += 1;
                assert_eq!(
                    reply.report, report,
                    "served bytes diverge ({config}, threads {threads}, {backend})"
                );
                assert_eq!(reply.polled, polled);
                assert_eq!(reply.generated, generated);
                // The session key is content + pool config: the first
                // request per backend ingests, everything after reuses.
                assert_eq!(reply.warm, requests > 2, "request {requests} ({backend})");
            }
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 8);
    assert_eq!(
        stats.ingests, 2,
        "one ingestion per pool backend, every repeat warm"
    );
    assert_eq!(stats.hits, 6);
    assert_eq!(stats.sessions, 2);

    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pin_prewarms_a_session_without_searching() {
    let dir = std::env::temp_dir().join("affidavit-serve-pin");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let spec = spec_for(&src, &tgt, "id", 1, "ram");
    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());

    // A cold pin ingests; no search runs, so no hit is recorded.
    assert!(!client.pin(&spec).unwrap(), "first pin must be cold");
    let stats = client.stats().unwrap();
    assert_eq!((stats.ingests, stats.hits), (1, 0), "pin must not search");
    assert_eq!(stats.sessions, 1);

    // The pre-warmed explain is a guaranteed session hit …
    let reply = client.explain(&spec).unwrap();
    assert!(reply.warm, "explain after pin must reuse the pinned pair");
    let stats = client.stats().unwrap();
    assert_eq!((stats.ingests, stats.hits), (1, 1));

    // … and re-pinning the same pair is free.
    assert!(client.pin(&spec).unwrap(), "repeat pin must be warm");
    assert_eq!(client.stats().unwrap().ingests, 1);

    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_metrics_op_mirrors_the_session_counters() {
    let dir = std::env::temp_dir().join("affidavit-serve-metrics");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let spec = spec_for(&src, &tgt, "id", 1, "ram");
    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());

    client.explain(&spec).unwrap();
    client.explain(&spec).unwrap();
    let stats = client.stats().unwrap();
    let text = client.metrics().unwrap();

    // Prometheus-style exposition: typed, one sample line per series,
    // and the serve series equal the daemon's own counters exactly.
    assert!(
        text.contains("# TYPE serve_requests_total counter"),
        "{text}"
    );
    for (series, value) in [
        ("serve_requests_total", stats.requests),
        ("serve_ingests_total", stats.ingests),
        ("serve_hits_total", stats.hits),
        ("serve_evictions_total", stats.evictions),
        ("serve_busy_rejections_total", 0),
        ("serve_deadline_expirations_total", 0),
    ] {
        let line = format!("{series} {value}");
        assert!(
            text.lines().any(|l| l == line),
            "expected `{line}` in:\n{text}"
        );
    }
    assert!(text.lines().any(|l| l == "serve_sessions 1"), "{text}");
    // The searches the daemon ran published into the same registry.
    assert!(text.contains("search_polled"), "{text}");

    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_expired_request_deadline_is_a_clean_rejection() {
    use std::time::Duration;

    let dir = std::env::temp_dir().join("affidavit-serve-deadline");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let spec = spec_for(&src, &tgt, "id", 1, "ram");
    let opts = ServeOptions {
        request_deadline: Some(Duration::ZERO),
        ..ServeOptions::default()
    };
    let mut daemon = serve(&opts).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());

    // A zero budget expires before the first search iteration: the
    // request is answered with an error, not a hang or a partial report.
    let err = client.explain(&spec).expect_err("deadline must expire");
    match err {
        affidavit_serve::ClientError::Rejected(message) => {
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
    // The daemon survives, and the deadline only aborted the search:
    // ingestion had already pinned the pair, so a pin (which never
    // searches) is warm and unaffected by the same deadline.
    let stats = daemon.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.ingests, 1, "the aborted request still ingested");
    assert!(client.pin(&spec).unwrap());

    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_delta_splices_warm_sessions_and_stays_byte_identical() {
    let dir = std::env::temp_dir().join("affidavit-serve-delta");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let plain = spec_for(&src, &tgt, "id", 1, "ram");
    let delta_spec = ExplainSpec {
        delta: true,
        ..plain.clone()
    };
    let metric = |text: &str, series: &str| -> u64 {
        text.lines()
            .find_map(|l| {
                l.strip_prefix(&format!("{series} "))
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(0)
    };

    let (report, polled, generated) = one_shot(&plain);
    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let client = ServeClient::new(daemon.local_addr().to_string());

    // Pre-warm the session, then run the first --delta explain: no
    // manifest yet, so it redoes — but over the pinned pair, and with
    // bytes identical to the one-shot path.
    assert!(!client.pin(&delta_spec).unwrap());
    let cold = client.explain(&delta_spec).unwrap();
    assert_eq!(cold.report, report);
    assert_eq!((cold.polled, cold.generated), (polled, generated));
    assert!(cold.warm, "the pre-warmed session must be reused");

    // The repeat splices from the manifest the redo just wrote: same
    // bytes, and the registry proves blocks were reused, not re-searched.
    let spliced = client.explain(&delta_spec).unwrap();
    assert_eq!(spliced.report, report);
    assert_eq!((spliced.polled, spliced.generated), (polled, generated));
    assert!(spliced.warm);
    let text = client.metrics().unwrap();
    assert!(
        metric(&text, "delta_blocks_reused_total") > 0,
        "the spliced repeat must reuse fingerprinted blocks:\n{text}"
    );
    assert!(metric(&text, "delta_pairs_spliced_total") > 0, "{text}");
    assert_eq!(metric(&text, "delta_fallbacks_total"), 0, "{text}");

    // Edit the target: the delta rerun redoes and must stay
    // byte-identical to a from-scratch one-shot over the edited pair.
    let mut edited = std::fs::read_to_string(&tgt).unwrap();
    edited.push_str("fresh,5,tagz\n");
    std::fs::write(&tgt, edited).unwrap();
    let (report2, polled2, generated2) = one_shot(&plain);
    assert_ne!(report2, report, "the edit must change the explanation");
    let redone = client.explain(&delta_spec).unwrap();
    assert_eq!(redone.report, report2);
    assert_eq!((redone.polled, redone.generated), (polled2, generated2));
    let text = client.metrics().unwrap();
    assert!(metric(&text, "delta_pairs_redone_total") > 0, "{text}");

    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_get_identical_bytes_from_one_warm_session() {
    let dir = std::env::temp_dir().join("affidavit-serve-concurrent");
    std::fs::remove_dir_all(&dir).ok();
    let (src, tgt) = write_pair(&dir);
    let spec = spec_for(&src, &tgt, "id", 1, "ram");
    let (report, _, _) = one_shot(&spec);

    let mut daemon = serve(&ServeOptions::default()).unwrap();
    let addr = daemon.local_addr().to_string();
    // 4 clients × 2 requests each, racing over their own keep-alive
    // connections. Every reply must carry the same bytes.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            let spec = spec.clone();
            let report = report.as_str();
            scope.spawn(move || {
                let client = ServeClient::new(addr);
                for _ in 0..2 {
                    let reply = client.explain(&spec).unwrap();
                    assert_eq!(reply.report, report);
                }
            });
        }
    });
    let client = ServeClient::new(addr);
    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.ingests, 1, "8 racing requests, one ingestion");
    assert_eq!(stats.hits, 7);
    // And a final repeat from a fresh client is still warm.
    assert!(client.explain(&spec).unwrap().warm);
    client.shutdown().unwrap();
    daemon.wait();
    std::fs::remove_dir_all(&dir).ok();
}
