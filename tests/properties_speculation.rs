//! Determinism battery for speculative K-way frontier expansion: for
//! random instances across seeds, both paper configurations, and the full
//! `threads × speculative_width` matrix, the rendered report, the trace
//! shape and the `SearchStats.polled`/`expansions` counters must be
//! byte-identical to the serial baseline (`threads = 1, width = 1`).
//!
//! The CI matrix leg pins one combination via the
//! `AFFIDAVIT_TEST_THREADS` / `AFFIDAVIT_TEST_SPECULATIVE_WIDTH`
//! environment variables; without them the whole matrix runs.

use affidavit::core::config::{AffidavitConfig, InitStrategy};
use affidavit::core::instance::ProblemInstance;
use affidavit::core::report::render_report;
use affidavit::core::search::Affidavit;
use affidavit::table::{Schema, Table, ValuePool};
use proptest::prelude::*;

/// The `(threads, speculative_width)` combinations under test: the env
/// override (CI matrix leg) wins, otherwise the full grid.
fn matrix() -> Vec<(usize, usize)> {
    let env_usize =
        |name: &str| -> Option<usize> { std::env::var(name).ok().and_then(|v| v.parse().ok()) };
    if let (Some(threads), Some(width)) = (
        env_usize("AFFIDAVIT_TEST_THREADS"),
        env_usize("AFFIDAVIT_TEST_SPECULATIVE_WIDTH"),
    ) {
        return vec![(threads, width)];
    }
    let mut combos = Vec::new();
    for threads in [1usize, 2, 4] {
        for width in [1usize, 2, 4, 8] {
            combos.push((threads, width));
        }
    }
    combos
}

/// A randomized instance family: scaling, constant replacement, an
/// identity key, a low-cardinality org column, plus seed-dependent
/// asymmetric noise — adversarial enough that different seeds exercise
/// eviction, speculation misses and the ⊞ fallback.
fn instance(seed: u64) -> ProblemInstance {
    let orgs = ["IBM", "SAP", "BASF", "KUKA", "DFKI"];
    let mut rows_s: Vec<Vec<String>> = Vec::new();
    let mut rows_t: Vec<Vec<String>> = Vec::new();
    let n = 24 + (seed % 17) as usize;
    for i in 0..n as u64 {
        let j = i.wrapping_mul(seed | 1) % 89;
        rows_s.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 200),
            "EUR".to_owned(),
            orgs[((i + seed) % 5) as usize].to_owned(),
        ]);
        rows_t.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 2),
            "h€".to_owned(),
            orgs[((i + seed) % 5) as usize].to_owned(),
        ]);
    }
    for i in 0..(seed % 5) {
        rows_s.push(vec![
            format!("del{i}"),
            format!("{}", i * 991),
            "EUR".to_owned(),
            "NOISE".to_owned(),
        ]);
        rows_t.push(vec![
            format!("ins{i}"),
            format!("{}", i * 17),
            "h€".to_owned(),
            "NOISE".to_owned(),
        ]);
    }
    let mut pool = ValuePool::new();
    let schema = Schema::new(["key", "Val", "Unit", "Org"]);
    let s = Table::from_rows(schema.clone(), &mut pool, rows_s);
    let t = Table::from_rows(schema, &mut pool, rows_t);
    ProblemInstance::new(s, t, pool).unwrap()
}

/// Everything that must be invariant: the rendered report (functions and
/// record partition), the full rendered trace (ids, poll order, kept
/// flags), the poll/expansion counters and the exact end-state cost.
fn fingerprint(cfg: AffidavitConfig, seed: u64) -> (String, String, usize, usize, usize, u64) {
    let mut inst = instance(seed);
    let out = Affidavit::new(cfg.with_seed(seed).with_trace()).explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
    (
        render_report(&out.explanation, &inst),
        out.trace.expect("trace enabled").render(),
        out.stats.polled,
        out.stats.expansions,
        out.stats.states_generated,
        out.stats.end_state_cost.to_bits(),
    )
}

fn config(init: InitStrategy, threads: usize, width: usize) -> AffidavitConfig {
    let mut cfg = match init {
        InitStrategy::Overlap => AffidavitConfig::paper_overlap(),
        _ => AffidavitConfig::paper_id(),
    };
    // Force the fan-out paths even on these small instances so the
    // parallel engine itself is what the assertions cover.
    cfg.parallel_min_records = 0;
    cfg.speculation_min_records = 0;
    cfg.threads = threads;
    cfg.speculative_width = width;
    cfg
}

proptest! {
    /// Both paper configurations are byte-identical to their serial
    /// baseline over the whole `threads × speculative_width` matrix.
    #[test]
    fn speculation_is_byte_identical_to_serial(seed in 0u64..10_000) {
        for init in [InitStrategy::Id, InitStrategy::Overlap] {
            let baseline = fingerprint(config(init, 1, 1), seed);
            for (threads, width) in matrix() {
                let got = fingerprint(config(init, threads, width), seed);
                prop_assert_eq!(
                    &baseline,
                    &got,
                    "divergence at seed {} ({:?}, threads {}, width {})",
                    seed,
                    init,
                    threads,
                    width
                );
            }
        }
    }
}

/// Degenerate widths: 0 (treated as 1), width beyond the frontier and the
/// queue bound, and width far past the attribute count all reconcile to
/// the same outcome.
#[test]
fn extreme_widths_match_serial() {
    let seed = 11;
    let baseline = fingerprint(config(InitStrategy::Id, 1, 1), seed);
    for width in [0usize, 3, 7, 64, 1024] {
        let got = fingerprint(config(InitStrategy::Id, 1, width), seed);
        assert_eq!(baseline, got, "width {width} diverged");
    }
}

/// The greedy paper_overlap configuration (ϱ = 1: single-state frontier
/// most of the time) still benefits nothing from speculation but must not
/// diverge either — including at high thread counts and auto threads.
#[test]
fn overlap_config_with_speculation_matches() {
    let seed = 4242;
    let baseline = fingerprint(config(InitStrategy::Overlap, 1, 1), seed);
    for (threads, width) in [(8usize, 8usize), (0, 4), (3, 2)] {
        let got = fingerprint(config(InitStrategy::Overlap, threads, width), seed);
        assert_eq!(baseline, got, "threads {threads} width {width} diverged");
    }
}

/// Speculation must also be invisible when the expansion safety valve
/// fires: the finalized partial explanation matches the serial engine.
#[test]
fn expansion_limit_matches_under_speculation() {
    let run = |width: usize| {
        let mut inst = instance(77);
        let mut cfg = config(InitStrategy::Id, 1, width)
            .with_seed(77)
            .with_trace();
        cfg.max_expansions = 3;
        let out = Affidavit::new(cfg).explain(&mut inst);
        assert!(out.stats.hit_expansion_limit);
        (
            render_report(&out.explanation, &inst),
            out.trace.expect("trace enabled").render(),
            out.stats.polled,
            out.stats.expansions,
        )
    };
    let baseline = run(1);
    for width in [2usize, 4, 8] {
        assert_eq!(baseline, run(width), "width {width} diverged at the limit");
    }
}
