//! Thread-count invariance of the parallel two-phase extension engine:
//! `explain()` must return a byte-identical explanation (functions, record
//! partition, rendered report) and end-state cost for `threads = 1` and
//! `threads = N`, for any seed — the per-attribute seeded RNGs and the
//! stable merge make scheduling invisible.

use affidavit::core::config::{AffidavitConfig, InitStrategy};
use affidavit::core::report::render_report;
use affidavit::core::search::Affidavit;
use affidavit::table::{Schema, Table, ValuePool};
use proptest::prelude::*;

/// A small but non-trivial instance: scaling, constant replacement, an
/// identity column and asymmetric noise, parameterized by seed.
fn instance(seed: u64) -> affidavit::core::instance::ProblemInstance {
    let orgs = ["IBM", "SAP", "BASF", "KUKA"];
    let mut rows_s: Vec<Vec<String>> = Vec::new();
    let mut rows_t: Vec<Vec<String>> = Vec::new();
    for i in 0..40u64 {
        let j = i.wrapping_mul(seed | 1) % 97;
        rows_s.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 500),
            "EUR".to_owned(),
            orgs[(i % 4) as usize].to_owned(),
        ]);
        rows_t.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 5),
            "k€".to_owned(),
            orgs[(i % 4) as usize].to_owned(),
        ]);
    }
    for i in 0..4u64 {
        rows_s.push(vec![
            format!("del{i}"),
            format!("{}", i * 777),
            "EUR".to_owned(),
            "NOISE".to_owned(),
        ]);
        rows_t.push(vec![
            format!("ins{i}"),
            format!("{}", i * 13),
            "k€".to_owned(),
            "NOISE".to_owned(),
        ]);
    }
    let mut pool = ValuePool::new();
    let schema = Schema::new(["key", "Val", "Unit", "Org"]);
    let s = Table::from_rows(schema.clone(), &mut pool, rows_s);
    let t = Table::from_rows(schema, &mut pool, rows_t);
    affidavit::core::instance::ProblemInstance::new(s, t, pool).unwrap()
}

/// Run one search and describe its outcome exhaustively enough that any
/// divergence (functions, costs, alignment partition, trace shape) shows.
fn fingerprint(cfg: AffidavitConfig, seed: u64) -> (String, u64, f64, usize) {
    let mut inst = instance(seed);
    let out = Affidavit::new(cfg.with_seed(seed)).explain(&mut inst);
    let e = &out.explanation;
    e.validate(&mut inst).unwrap();
    (
        render_report(e, &inst),
        e.cost_units(inst.arity()),
        out.stats.end_state_cost,
        out.stats.states_generated,
    )
}

/// The parallel configuration under test: `(threads, speculative_width)`.
/// Defaults to `(8, 1)`; the CI determinism matrix leg overrides it via
/// `AFFIDAVIT_TEST_THREADS` / `AFFIDAVIT_TEST_SPECULATIVE_WIDTH` so this
/// suite also re-runs pinned to a speculating multi-thread engine.
fn parallel_config() -> (usize, usize) {
    let env_usize =
        |name: &str| -> Option<usize> { std::env::var(name).ok().and_then(|v| v.parse().ok()) };
    (
        env_usize("AFFIDAVIT_TEST_THREADS").unwrap_or(8),
        env_usize("AFFIDAVIT_TEST_SPECULATIVE_WIDTH").unwrap_or(1),
    )
}

proptest! {
    /// threads = 1 and the parallel configuration agree byte-for-byte,
    /// both paper configs.
    #[test]
    fn explain_is_thread_count_invariant(seed in 0u64..10_000) {
        let (threads, width) = parallel_config();
        for init in [InitStrategy::Id, InitStrategy::Overlap] {
            let mut base = AffidavitConfig::paper_id();
            base.init = init;
            // Force the fan-out path so the parallel engine itself (not
            // just the sequential fallback) is what the assertion covers.
            base.parallel_min_records = 0;
            if init == InitStrategy::Overlap {
                base.beta = 1;
                base.queue_width = 1;
            }
            let sequential = fingerprint(base.clone().with_threads(1), seed);
            let parallel = fingerprint(
                base.clone().with_threads(threads).with_speculative_width(width),
                seed,
            );
            prop_assert_eq!(&sequential, &parallel, "divergence at seed {} ({:?})", seed, init);
        }
    }
}

/// Pinned-seed smoke check that also exercises thread counts beyond the
/// machine's core count and the auto (`0`) setting.
#[test]
fn explain_matches_across_many_thread_counts() {
    let mut cfg = AffidavitConfig::paper_id();
    cfg.parallel_min_records = 0;
    let base = fingerprint(cfg.clone().with_threads(1), 7);
    for threads in [2usize, 3, 8, 0] {
        let got = fingerprint(cfg.clone().with_threads(threads), 7);
        assert_eq!(base, got, "threads={threads} diverged");
    }
}
