//! End-to-end integration tests spanning datasets → datagen → core search
//! → metrics, plus safety-valve and determinism guarantees.

use affidavit::core::explanation::Explanation;
use affidavit::core::{Affidavit, AffidavitConfig, InitStrategy};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datagen::metrics::evaluate;
use affidavit::datasets::{by_name, synth};

fn generated(name: &str, eta: f64, tau: f64, seed: u64) -> affidavit::datagen::GeneratedInstance {
    let spec = by_name(name).expect("dataset exists");
    let rows = spec.rows.min(800);
    let (base, pool) = synth::generate_rows(&spec, rows, seed);
    Blueprint::new(base, pool, GenConfig::new(eta, tau, seed)).materialize_full()
}

#[test]
fn both_configs_solve_easy_settings_accurately() {
    for name in ["iris", "bridges", "abalone"] {
        let mut gen = generated(name, 0.3, 0.3, 0xAB);
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut gen.instance);
        out.explanation.validate(&mut gen.instance).unwrap();
        let m = evaluate(&out.explanation, &mut gen, out.stats.duration);
        assert!(m.accuracy > 0.85, "{name}: acc {}", m.accuracy);
        assert!(m.delta_core > 0.85, "{name}: Δcore {}", m.delta_core);
    }
}

#[test]
fn explanations_are_valid_across_all_settings_and_configs() {
    for (eta, tau) in [(0.3, 0.3), (0.5, 0.5), (0.7, 0.7)] {
        for init in [InitStrategy::Empty, InitStrategy::Id, InitStrategy::Overlap] {
            let mut gen = generated("echo", eta, tau, 9);
            let mut cfg = AffidavitConfig::paper_id();
            cfg.init = init;
            let out = Affidavit::new(cfg).explain(&mut gen.instance);
            out.explanation
                .validate(&mut gen.instance)
                .unwrap_or_else(|e| panic!("(η={eta},τ={tau},{init:?}): {e}"));
        }
    }
}

#[test]
fn result_never_costs_more_than_trivial() {
    for seed in [1u64, 2, 3] {
        let mut gen = generated("balance", 0.5, 0.5, seed);
        let trivial = Explanation::trivial(&gen.instance).cost_units(gen.instance.arity());
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut gen.instance);
        assert!(
            out.explanation.cost_units(gen.instance.arity()) <= trivial,
            "seed {seed}: worse than trivial"
        );
    }
}

#[test]
fn fully_deterministic_given_seed() {
    let run = || {
        let mut gen = generated("hepatitis", 0.5, 0.5, 31);
        let out =
            Affidavit::new(AffidavitConfig::paper_id().with_seed(7)).explain(&mut gen.instance);
        (
            out.explanation.functions.clone(),
            out.explanation.core_pairs().to_vec(),
            out.stats.polled,
        )
    };
    let (f1, c1, p1) = run();
    let (f2, c2, p2) = run();
    assert_eq!(f1, f2);
    assert_eq!(c1, c2);
    assert_eq!(p1, p2);
}

#[test]
fn expansion_limit_still_yields_valid_explanation() {
    let mut gen = generated("horse", 0.5, 0.5, 3);
    let mut cfg = AffidavitConfig::paper_id();
    cfg.max_expansions = 2; // absurdly small: forces the safety valve
    let out = Affidavit::new(cfg).explain(&mut gen.instance);
    assert!(out.stats.hit_expansion_limit);
    out.explanation.validate(&mut gen.instance).unwrap();
}

#[test]
fn scaled_instances_recover_reference_like_figure5() {
    let spec = by_name("flight-500k").unwrap();
    let (base, pool) = synth::generate_rows(&spec, 3000, 50);
    let blueprint = Blueprint::new(base, pool, GenConfig::new(0.3, 0.3, 50));
    for pct in [30u32, 60, 100] {
        let mut gen = blueprint.materialize(pct as f64 / 100.0);
        let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut gen.instance);
        let m = evaluate(&out.explanation, &mut gen, out.stats.duration);
        assert!(
            m.accuracy > 0.9,
            "scale {pct}%: acc {} below expectation",
            m.accuracy
        );
    }
}

#[test]
fn alpha_extremes_change_the_preferred_explanation() {
    // α→1: only unmatched records count — big maps are free, so the search
    // may align aggressively. α→0: only function complexity counts — the
    // all-identity end state is optimal. Both must stay valid.
    let mut gen = generated("iris", 0.5, 0.5, 5);
    let out_records =
        Affidavit::new(AffidavitConfig::paper_id().with_alpha(0.95)).explain(&mut gen.instance);
    out_records.explanation.validate(&mut gen.instance).unwrap();

    let mut gen2 = generated("iris", 0.5, 0.5, 5);
    let out_funcs =
        Affidavit::new(AffidavitConfig::paper_id().with_alpha(0.05)).explain(&mut gen2.instance);
    out_funcs.explanation.validate(&mut gen2.instance).unwrap();
    assert!(
        out_funcs.explanation.l_functions() <= out_records.explanation.l_functions(),
        "low α must not buy more function complexity than high α"
    );
}

#[test]
fn date_conversion_extension_is_learned_end_to_end() {
    // §6 extension: a date column converted between concrete formats must
    // be recovered as a 2-parameter DateConvert, not a value map.
    use affidavit::functions::datetime::DateFormat;
    use affidavit::functions::AttrFunction;
    use affidavit::table::{Schema, Table, ValuePool};

    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..60)
        .map(|i| {
            vec![
                format!("k{i}"),
                format!("20{:02}{:02}{:02}", 10 + i % 10, 1 + i % 12, 1 + i % 28),
            ]
        })
        .collect();
    let rows_t: Vec<Vec<String>> = (0..60)
        .map(|i| {
            vec![
                format!("k{i}"),
                format!("{:02}.{:02}.20{:02}", 1 + i % 28, 1 + i % 12, 10 + i % 10),
            ]
        })
        .collect();
    let s = Table::from_rows(Schema::new(["key", "date"]), &mut pool, rows_s);
    let t = Table::from_rows(Schema::new(["key", "date"]), &mut pool, rows_t);
    let mut inst = affidavit::core::ProblemInstance::new(s, t, pool).unwrap();
    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
    assert_eq!(
        out.explanation.functions[1],
        AttrFunction::DateConvert(DateFormat::YyyyMmDd, DateFormat::DottedDmy),
        "got {:?}",
        out.explanation.functions[1]
    );
    assert_eq!(out.explanation.core_size(), 60);
}

#[test]
fn corpus_retrieval_finds_functions_induction_cannot() {
    // x ↦ x/60 (minutes → hours) is NOT representable by single-example
    // induction when pairs are noisy fractions… but more importantly, a
    // non-power-of-ten ratio like 1/1024 is induced per-example anyway; the
    // corpus guarantees it appears even from a single clean example pair
    // and adds flag rewrites induction would only reach via prefix
    // replacement. Here: corpus-on must solve a KiB→MiB rescale exactly.
    use affidavit::table::{Schema, Table, ValuePool};

    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..40)
        .map(|i| vec![format!("f{i}"), format!("{}", (i + 1) * 1024)])
        .collect();
    let rows_t: Vec<Vec<String>> = (0..40)
        .map(|i| vec![format!("f{i}"), format!("{}", i + 1)])
        .collect();
    let s = Table::from_rows(Schema::new(["file", "kib"]), &mut pool, rows_s);
    let t = Table::from_rows(Schema::new(["file", "kib"]), &mut pool, rows_t);
    let mut inst = affidavit::core::ProblemInstance::new(s, t, pool).unwrap();
    let mut cfg = AffidavitConfig::paper_id();
    cfg.use_corpus = true;
    let out = Affidavit::new(cfg).explain(&mut inst);
    assert!(
        matches!(&out.explanation.functions[1],
            affidavit::functions::AttrFunction::Scale(r) if r.den() == 1024),
        "got {:?}",
        out.explanation.functions[1]
    );
    assert_eq!(out.explanation.core_size(), 40);
}

#[test]
fn schema_alignment_plus_search_handles_reordered_columns() {
    // §6 future work: the target snapshot renamed and reordered its
    // columns; align schemas first, then explain as usual.
    use affidavit::core::schema_align::align_schemas;
    use affidavit::table::{Schema, Table, ValuePool};

    let mut pool = ValuePool::new();
    let rows_s: Vec<Vec<String>> = (0..30)
        .map(|i| vec![format!("k{i}"), format!("{}", i * 1000), "USD".to_owned()])
        .collect();
    let rows_t: Vec<Vec<String>> = (0..30)
        .map(|i| vec!["k $".to_owned(), format!("k{i}"), format!("{i}")])
        .collect();
    let s = Table::from_rows(Schema::new(["key", "amount", "unit"]), &mut pool, rows_s);
    let t = Table::from_rows(Schema::new(["w", "x", "y"]), &mut pool, rows_t);

    let alignment = align_schemas(&s, &t, &pool);
    let t_aligned = alignment.reorder_target(&t, s.schema());
    let mut inst = affidavit::core::ProblemInstance::new(s, t_aligned, pool).unwrap();
    let out = Affidavit::new(AffidavitConfig::paper_id()).explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
    assert_eq!(out.explanation.core_size(), 30);
    assert!(matches!(
        &out.explanation.functions[1],
        affidavit::functions::AttrFunction::Scale(_)
    ));
    assert!(matches!(
        &out.explanation.functions[2],
        affidavit::functions::AttrFunction::Constant(_)
            | affidavit::functions::AttrFunction::FrontMask(_)
    ));
}
