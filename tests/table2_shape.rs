//! Headline-reproduction shape tests: the Table 2 effects the paper's
//! conclusions rest on, asserted at laptop scale.

use affidavit::datasets::by_name;
use affidavit_bench::harness::{run_cell, ConfigKind};

/// H^id is accurate out of the box at the paper's "practical" setting.
#[test]
fn hid_is_reliable_at_low_noise() {
    for name in ["iris", "abalone", "ncvoter-1k"] {
        let spec = by_name(name).unwrap();
        let rows = spec.rows.min(1000);
        let cell = run_cell(&spec, rows, 0.3, 0.3, ConfigKind::Hid, 2, 0xEDB7, 1);
        assert!(cell.acc > 0.95, "{name}: acc {}", cell.acc);
        assert!(cell.delta_core > 0.9, "{name}: Δcore {}", cell.delta_core);
    }
}

/// The Hs overlap matcher collapses on low-distinctness tables (paper:
/// Δcore = 0 on chess/nursery/letter) while H^id survives — the central
/// contrast of §5.3.
#[test]
fn hs_collapses_on_low_distinctness_tables_hid_does_not() {
    let spec = by_name("chess").unwrap();
    let rows = 1500;
    let hs = run_cell(&spec, rows, 0.3, 0.3, ConfigKind::Hs, 2, 0xEDB7, 1);
    assert!(
        hs.delta_core < 0.2,
        "Hs should collapse on chess: Δcore {}",
        hs.delta_core
    );
    assert!(hs.delta_costs > 1.2, "collapse shows as cost blow-up");
    let hid = run_cell(&spec, rows, 0.3, 0.3, ConfigKind::Hid, 2, 0xEDB7, 1);
    assert!(
        hid.delta_core > 0.95,
        "H^id must survive: {}",
        hid.delta_core
    );
    assert!(hid.acc > 0.95);
}

/// Hs is the faster configuration (its purpose per §5.2).
#[test]
fn hs_is_faster_than_hid() {
    let spec = by_name("adult").unwrap();
    let hs = run_cell(&spec, 1500, 0.3, 0.3, ConfigKind::Hs, 2, 3, 1);
    let hid = run_cell(&spec, 1500, 0.3, 0.3, ConfigKind::Hid, 2, 3, 1);
    assert!(
        hs.t_secs < hid.t_secs,
        "Hs {}s should undercut H^id {}s",
        hs.t_secs,
        hid.t_secs
    );
}
