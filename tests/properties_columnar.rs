//! Row-vs-column differential battery for the columnar table core.
//!
//! The table stores one contiguous `Sym` column per attribute; everything
//! above the table layer must be unable to tell. This suite locks that in
//! three layers:
//!
//! 1. **Builder parity** — `from_rows`, `push`, `push_row` and
//!    `from_columns` produce equal tables, and `project`/`select` agree
//!    with their row-wise definitions.
//! 2. **Proptest round-trip** — for arbitrary string matrices, cells
//!    survive the transpose-in/transpose-out round trip through columns,
//!    row views and materialized records.
//! 3. **Byte-identical output** — `explain` (both paper configs, threads
//!    {1, 4}, speculative widths {1, 4}) and `profile` (RAM and
//!    disk-spilled pool backends) render byte-identical reports and pool
//!    evolution whether the instance tables were built row-wise or
//!    rebuilt from raw columns.

use affidavit::core::config::{AffidavitConfig, InitStrategy};
use affidavit::core::profiling::{profile_dirs, ProfileOptions};
use affidavit::core::report::render_report;
use affidavit::core::search::Affidavit;
use affidavit::store::{PoolBackend, PoolConfig};
use affidavit::table::{csv, AttrId, RecordId, Schema, Sym, Table, ValuePool};
use proptest::prelude::*;

/// Rebuild a table from its raw column slices via `from_columns` — the
/// column-build path. Never touches the pool.
fn column_rebuild(t: &Table) -> Table {
    let cols: Vec<Vec<Sym>> = t.columns().iter().map(<[Sym]>::to_vec).collect();
    Table::from_columns(t.schema().clone(), cols)
}

/// Rebuild a table record by record via `push` — the row-build path.
fn push_rebuild(t: &Table) -> Table {
    let mut out = Table::new(t.schema().clone());
    for (_, r) in t.iter() {
        out.push(r.to_record());
    }
    out
}

#[test]
fn builders_agree() {
    let mut pool = ValuePool::new();
    let t = Table::from_rows(
        Schema::new(["Val", "Unit", "Org"]),
        &mut pool,
        vec![
            vec!["80000", "EUR", "IBM"],
            vec!["65", "k€", "SAP"],
            vec!["80000", "EUR", "IBM"],
            vec!["", "EUR", "BASF"],
        ],
    );
    let by_columns = column_rebuild(&t);
    let by_push = push_rebuild(&t);
    assert_eq!(t, by_columns);
    assert_eq!(t, by_push);

    // push_row path agrees with push(Record).
    let mut by_push_row = Table::new(t.schema().clone());
    for (_, r) in t.iter() {
        by_push_row.push_row(&r.to_vec());
    }
    assert_eq!(t, by_push_row);

    // project/select parity between the row-built and column-built tables.
    let keep = [AttrId(2), AttrId(0)];
    assert_eq!(t.project(&keep), by_columns.project(&keep));
    let ids = [RecordId(3), RecordId(0), RecordId(0)];
    assert_eq!(t.select(&ids), by_columns.select(&ids));

    // Row-wise definitions of project/select hold on the column store.
    let p = t.project(&keep);
    let s = t.select(&ids);
    for (r, _) in t.iter().take(p.len()) {
        for (k, &a) in keep.iter().enumerate() {
            assert_eq!(p.value(r, AttrId(k as u32)), t.value(r, a));
        }
    }
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(s.record(RecordId(i as u32)), t.record(id));
    }
}

proptest! {
    /// Cells survive the transpose-in/transpose-out round trip for
    /// arbitrary string matrices, and row views agree with materialized
    /// records and raw column slices.
    #[test]
    fn cells_round_trip(
        arity in 1usize..4,
        rows in prop::collection::vec(
            prop::collection::vec("[a-z0-9 ,\"]{0,6}", 4), 0..8),
    ) {
        let rows: Vec<Vec<String>> =
            rows.into_iter().map(|r| r[..arity].to_vec()).collect();
        let mut pool = ValuePool::new();
        let schema = Schema::new((0..arity).map(|a| format!("c{a}")));
        let t = Table::from_rows(schema, &mut pool, rows.clone());
        prop_assert_eq!(t.len(), rows.len());
        prop_assert_eq!(&column_rebuild(&t), &t);
        prop_assert_eq!(&push_rebuild(&t), &t);
        for (r, row) in rows.iter().enumerate() {
            let rid = RecordId(r as u32);
            let view = t.row(rid);
            let rec = t.record(rid);
            prop_assert!(view == rec, "row view must equal materialized record");
            for (a, cell) in row.iter().enumerate() {
                let attr = AttrId(a as u32);
                prop_assert_eq!(pool.get(t.value(rid, attr)), cell);
                prop_assert_eq!(pool.get(t.column(attr)[r]), cell);
                prop_assert_eq!(pool.get(view.get(a)), cell);
                prop_assert_eq!(pool.get(rec.get(a)), cell);
            }
        }
    }
}

/// The determinism-suite instance, built row-wise or rebuilt column-wise
/// from the same interned symbols (identical pools by construction).
fn instance(seed: u64, columnar: bool) -> affidavit::core::instance::ProblemInstance {
    let orgs = ["IBM", "SAP", "BASF", "KUKA"];
    let mut rows_s: Vec<Vec<String>> = Vec::new();
    let mut rows_t: Vec<Vec<String>> = Vec::new();
    for i in 0..40u64 {
        let j = i.wrapping_mul(seed | 1) % 97;
        rows_s.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 500),
            "EUR".to_owned(),
            orgs[(i % 4) as usize].to_owned(),
        ]);
        rows_t.push(vec![
            format!("k{i}"),
            format!("{}", (j + 1) * 5),
            "k€".to_owned(),
            orgs[(i % 4) as usize].to_owned(),
        ]);
    }
    let mut pool = ValuePool::new();
    let schema = Schema::new(["key", "Val", "Unit", "Org"]);
    let s = Table::from_rows(schema.clone(), &mut pool, rows_s);
    let t = Table::from_rows(schema, &mut pool, rows_t);
    let (s, t) = if columnar {
        (column_rebuild(&s), column_rebuild(&t))
    } else {
        (s, t)
    };
    affidavit::core::instance::ProblemInstance::new(s, t, pool).unwrap()
}

/// Everything a divergence could show up in: the rendered report, the
/// search counters, the exact cost, and the full pool evolution.
fn explain_fingerprint(cfg: AffidavitConfig, seed: u64, columnar: bool) -> String {
    let mut inst = instance(seed, columnar);
    let out = Affidavit::new(cfg.with_seed(seed)).explain(&mut inst);
    out.explanation.validate(&mut inst).unwrap();
    let mut pool_dump = String::new();
    for (_, s) in inst.pool.iter() {
        pool_dump.push_str(s);
        pool_dump.push('\u{1}');
    }
    format!(
        "{}\npolled={} generated={} cost={}\npool={}",
        render_report(&out.explanation, &inst),
        out.stats.polled,
        out.stats.states_generated,
        out.stats.end_state_cost.to_bits(),
        pool_dump,
    )
}

#[test]
fn explain_is_build_path_invariant() {
    for init in [InitStrategy::Id, InitStrategy::Overlap] {
        for threads in [1usize, 4] {
            for width in [1usize, 4] {
                let mut cfg = AffidavitConfig::paper_id();
                cfg.init = init;
                cfg.parallel_min_records = 0;
                let cfg = cfg.with_threads(threads).with_speculative_width(width);
                let row = explain_fingerprint(cfg.clone(), 7, false);
                let col = explain_fingerprint(cfg, 7, true);
                assert_eq!(
                    row, col,
                    "row-built vs column-built diverged ({init:?}, {threads} threads, width {width})"
                );
            }
        }
    }
}

/// Profile the same snapshot directories through the RAM backend at one
/// ingestion thread and the disk-spilled backend (tiny budget, forced
/// spills) at four — timing stripped, the outputs must be byte-identical.
#[test]
fn profile_is_backend_invariant() {
    let root =
        std::env::temp_dir().join(format!("affidavit-columnar-profile-{}", std::process::id()));
    let before = root.join("before");
    let after = root.join("after");
    std::fs::create_dir_all(&before).unwrap();
    std::fs::create_dir_all(&after).unwrap();
    let inst = instance(3, false);
    csv::write_path(
        before.join("pair.csv"),
        &inst.source,
        &inst.pool,
        csv::CsvOptions::default(),
    )
    .unwrap();
    csv::write_path(
        after.join("pair.csv"),
        &inst.target,
        &inst.pool,
        csv::CsvOptions::default(),
    )
    .unwrap();

    let run = |backend: PoolBackend, threads: usize| {
        let mut opts = ProfileOptions::default();
        opts.ingest.chunk_rows = 8;
        opts.ingest.threads = threads;
        opts.pool = PoolConfig {
            backend,
            budget_bytes: 512,
        };
        let mut profile = profile_dirs(&before, &after, &opts).expect("profiling succeeds");
        profile.strip_timing();
        profile.render()
    };
    let ram = run(PoolBackend::Ram, 1);
    let disk = run(PoolBackend::Disk, 4);
    std::fs::remove_dir_all(&root).ok();
    assert_eq!(ram, disk, "profile must not depend on the pool backend");
    assert!(ram.contains("pair"), "profile covered the table pair");
}
