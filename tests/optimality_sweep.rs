//! Randomized optimality check: on small instances whose transformations
//! come from a known finite candidate space, the heuristic search must
//! match (or beat, via functions outside the restricted space) the
//! brute-force optimum of `baselines::exact` — across many deterministic
//! seeds, transformation choices and noise placements.

use affidavit::baselines::exact::solve_exact;
use affidavit::core::{Affidavit, AffidavitConfig, ProblemInstance};
use affidavit::functions::AttrFunction;
use affidavit::table::{Rational, Schema, Table, ValuePool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The candidate space the generator draws from (identity always present).
fn val_candidates() -> Vec<AttrFunction> {
    vec![
        AttrFunction::Identity,
        AttrFunction::Scale(Rational::new(1, 10).unwrap()),
        AttrFunction::Scale(Rational::new(1, 100).unwrap()),
        AttrFunction::Scale(Rational::new(100, 1).unwrap()),
    ]
}

fn tag_candidates(pool: &mut ValuePool) -> Vec<AttrFunction> {
    vec![
        AttrFunction::Identity,
        AttrFunction::Uppercase,
        AttrFunction::Prefix(pool.intern("X-")),
    ]
}

/// Build a 12-core-record instance with the chosen transformations and two
/// noise rows per side; returns the instance and the exact-space optimum.
fn build(seed: u64) -> (ProblemInstance, Vec<AttrFunction>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = ValuePool::new();

    let vals = val_candidates();
    let tags = tag_candidates(&mut pool);
    let f_val = vals[rng.gen_range(0..vals.len())].clone();
    let f_tag = tags[rng.gen_range(0..tags.len())].clone();

    let tag_words = ["ibm", "sap", "basf", "dab"];
    let mut rows_s: Vec<Vec<String>> = Vec::new();
    let mut rows_t: Vec<Vec<String>> = Vec::new();
    for i in 0..12usize {
        let key = format!("k{i}");
        let val = ((i + 1) * 100).to_string();
        let tag = tag_words[i % tag_words.len()].to_owned();
        rows_s.push(vec![key.clone(), val.clone(), tag.clone()]);
        let v = pool.intern(&val);
        let t = pool.intern(&tag);
        let val_out = f_val.apply(v, &mut pool).expect("total on 100..1200");
        let tag_out = f_tag.apply(t, &mut pool).expect("total on words");
        rows_t.push(vec![
            key,
            pool.get(val_out).to_owned(),
            pool.get(tag_out).to_owned(),
        ]);
    }
    // Noise rows, format-consistent per side.
    for n in 0..2usize {
        rows_s.push(vec![
            format!("del{n}"),
            format!("{}", 7700 + n),
            "gone".to_owned(),
        ]);
        rows_t.push(vec![
            format!("ins{n}"),
            format!("{}", 31 + n),
            "NEW".to_owned(),
        ]);
    }

    let schema = Schema::new(["key", "val", "tag"]);
    let s = Table::from_rows(schema.clone(), &mut pool, rows_s);
    let t = Table::from_rows(schema, &mut pool, rows_t);
    let inst = ProblemInstance::new(s, t, pool).unwrap();
    (inst, vec![f_val, f_tag])
}

#[test]
fn heuristic_never_loses_to_exact_across_seeds() {
    for seed in 0..15u64 {
        let (mut inst, reference) = build(seed);
        // Tag candidates built against the instance pool so syms line up.
        let tag_cands = vec![
            AttrFunction::Identity,
            AttrFunction::Uppercase,
            AttrFunction::Prefix(inst.pool.intern("X-")),
        ];
        let candidates = vec![vec![AttrFunction::Identity], val_candidates(), tag_cands];
        let exact = solve_exact(&mut inst, &candidates, 0.5, 100_000);
        let out = Affidavit::new(AffidavitConfig::paper_id().with_seed(seed)).explain(&mut inst);
        out.explanation.validate(&mut inst).unwrap();

        let heuristic_cost = out.explanation.cost(0.5, inst.arity());
        assert!(
            heuristic_cost <= exact.cost,
            "seed {seed}: heuristic {heuristic_cost} worse than exact {exact_cost} \
             (reference functions {reference:?})",
            exact_cost = exact.cost,
        );
        // The learned value/tag functions reproduce the reference on every
        // core value (they may be syntactically different but must agree).
        let mut pool = inst.pool.clone();
        for i in 0..12usize {
            let v = pool.intern(&format!("{}", (i + 1) * 100));
            let want = reference[0].apply(v, &mut pool);
            let got = out.explanation.functions[1].apply(v, &mut pool);
            assert_eq!(got, want, "seed {seed}: val column disagrees");
        }
    }
}
