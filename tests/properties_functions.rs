//! Property-based tests for the function library: induction soundness,
//! application determinism, and exact-decimal arithmetic laws.

use affidavit::functions::{induce_from_example, AttrFunction, Registry};
use affidavit::table::{Decimal, Rational, ValuePool};
use proptest::prelude::*;

/// Arbitrary "cell value" strings: a healthy mix of numerics, codes, words
/// and unicode, like real table cells.
fn cell_value() -> impl Strategy<Value = String> {
    prop_oneof![
        // numerics (incl. padded / signed / decimal)
        "(\\+|-)?[0-9]{1,10}",
        "[0-9]{1,6}\\.[0-9]{1,4}",
        "0{1,4}[0-9]{1,4}",
        // words and codes
        "[a-zA-Z]{1,10}",
        "[A-Z]{1,3}-?[0-9]{1,5}",
        // dates
        "20[0-9]{2}(0[1-9]|1[0-2])(0[1-9]|1[0-9]|2[0-8])",
        // a little unicode
        "[a-zäöüß]{1,6}",
    ]
}

proptest! {
    /// Every candidate induced from an example (s, t) maps s to t.
    #[test]
    fn induction_is_sound(s in cell_value(), t in cell_value()) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(&s);
        let tt = pool.intern(&t);
        let candidates = induce_from_example(ss, tt, &mut pool, &Registry::default());
        // Constant(t) always applies, so the set is never empty.
        prop_assert!(!candidates.is_empty());
        for f in &candidates {
            let got = f.apply(ss, &mut pool);
            prop_assert_eq!(
                got.map(|g| pool.get(g).to_owned()),
                Some(t.clone()),
                "{:?} does not map {:?} to {:?}", f, s, t
            );
        }
    }

    /// Function application is deterministic and stable under re-interning.
    #[test]
    fn application_is_deterministic(s in cell_value(), t in cell_value()) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(&s);
        let tt = pool.intern(&t);
        let candidates = induce_from_example(ss, tt, &mut pool, &Registry::default());
        for f in &candidates {
            let a = f.apply(ss, &mut pool);
            let b = f.apply(ss, &mut pool);
            prop_assert_eq!(a, b);
        }
    }

    /// ψ is consistent with the Def. 3.9 parameter counts.
    #[test]
    fn psi_matches_parameter_count(s in cell_value(), t in cell_value()) {
        let mut pool = ValuePool::new();
        let ss = pool.intern(&s);
        let tt = pool.intern(&t);
        for f in induce_from_example(ss, tt, &mut pool, &Registry::default()) {
            let expected = match &f {
                AttrFunction::Identity
                | AttrFunction::Uppercase
                | AttrFunction::Lowercase => 0,
                AttrFunction::PrefixReplace(..)
                | AttrFunction::SuffixReplace(..)
                | AttrFunction::DateConvert(..) => 2,
                AttrFunction::Map(m) => 2 * m.len() as u64,
                _ => 1,
            };
            prop_assert_eq!(f.psi(), expected);
        }
    }

    /// Decimal parse/format round-trips canonically.
    #[test]
    fn decimal_roundtrip(m in -1_000_000_000i64..1_000_000_000, scale in 0u32..9) {
        let d = Decimal::new(m as i128, scale);
        let s = d.to_string();
        let back = Decimal::parse(&s).expect("canonical string parses");
        prop_assert_eq!(d, back);
    }

    /// Addition is commutative and subtraction is its inverse.
    #[test]
    fn decimal_add_laws(
        a in -1_000_000i64..1_000_000, sa in 0u32..6,
        b in -1_000_000i64..1_000_000, sb in 0u32..6,
    ) {
        let x = Decimal::new(a as i128, sa);
        let y = Decimal::new(b as i128, sb);
        let xy = x.checked_add(y).expect("no overflow in range");
        let yx = y.checked_add(x).expect("no overflow in range");
        prop_assert_eq!(xy, yx);
        prop_assert_eq!(xy.checked_sub(y), Some(x));
    }

    /// Scaling by r then by 1/r is the identity on exact values.
    #[test]
    fn scale_inverse_roundtrip(v in 1i64..1_000_000, k in 1u32..4) {
        let den = 10i128.pow(k);
        let down = Rational::new(1, den).unwrap();
        let up = Rational::new(den, 1).unwrap();
        let x = Decimal::from_int(v as i128);
        let scaled = down.mul_decimal(x).expect("power of ten terminates");
        let back = up.mul_decimal(scaled).expect("exact");
        prop_assert_eq!(back, x);
    }

    /// Rational::from_decimals produces the exact ratio: y·b = a.
    #[test]
    fn rational_ratio_exact(a in 1i64..100_000, b in 1i64..100_000) {
        let da = Decimal::from_int(a as i128);
        let db = Decimal::from_int(b as i128);
        let r = Rational::from_decimals(da, db).expect("b non-zero");
        if let Some(product) = r.mul_decimal(db) {
            prop_assert_eq!(product, da);
        }
    }
}
