//! End-to-end reproduction of the Figure 1 running example.

use affidavit::core::config::AffidavitConfig;
use affidavit::core::report::render_report;
use affidavit::core::search::Affidavit;
use affidavit::datasets::running_example::{figure1_instance, figure1_reference};

#[test]
fn solves_running_example_with_paper_id_config() {
    let mut inst = figure1_instance();
    let reference = figure1_reference(&mut inst);
    let ref_cost = reference.cost_units(7);
    assert_eq!(ref_cost, 77);

    let cfg = AffidavitConfig::paper_id();
    let out = Affidavit::new(cfg).explain(&mut inst);
    let e = &out.explanation;
    e.validate(&mut inst).unwrap();
    eprintln!("{}", render_report(e, &inst));
    eprintln!("cost: {} (reference 77)", e.cost_units(7));
    assert!(
        e.cost_units(7) <= ref_cost,
        "found cost {} worse than reference 77",
        e.cost_units(7)
    );
}
