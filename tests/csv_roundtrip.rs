//! Property-based CSV round-trip: anything we write we must read back
//! verbatim, including separators, quotes, newlines and unicode — through
//! *both* reading paths (in-memory `read_str` and the chunked streaming
//! reader the ingestion pipeline uses), which must agree byte for byte.

use affidavit::store::{ingest, IngestOptions};
use affidavit::table::{csv, Record, Schema, Table, ValuePool};
use proptest::prelude::*;

/// Parse `text` through the serial in-memory path and through streaming
/// ingestion (forcing the given chunk size); assert identical results.
fn assert_paths_agree(text: &str, chunk_rows: usize) -> (Table, ValuePool) {
    let mut mem_pool = ValuePool::new();
    let mem = csv::read_str(text, &mut mem_pool, csv::CsvOptions::default()).unwrap();
    for threads in [1usize, 2] {
        let opts = IngestOptions {
            chunk_rows,
            threads,
            ..IngestOptions::default()
        };
        let mut stream_pool = ValuePool::new();
        let stream = ingest::read_stream(text.as_bytes(), &mut stream_pool, &opts).unwrap();
        assert_eq!(stream.len(), mem.len());
        let mem_strings: Vec<&str> = mem_pool.iter().map(|(_, s)| s).collect();
        let stream_strings: Vec<&str> = stream_pool.iter().map(|(_, s)| s).collect();
        assert_eq!(mem_strings, stream_strings, "interning order must match");
        for (id, rec) in mem.iter() {
            assert_eq!(rec.to_vec().as_slice(), stream.record(id).values());
        }
    }
    (mem, mem_pool)
}

#[test]
fn crlf_line_endings_stream_identically() {
    let (t, _) = assert_paths_agree("a,b\r\n1,2\r\n3,4\r\n", 1);
    assert_eq!(t.len(), 2);
}

#[test]
fn quoted_newlines_and_commas_stream_identically() {
    let text = "a,b\n\"line1\nline2\",\"x,y\"\n\"he said \"\"hi\"\"\",\"tail\r\nend\"\n";
    let (t, pool) = assert_paths_agree(text, 1);
    assert_eq!(t.len(), 2);
    assert_eq!(
        pool.get(t.value(affidavit::table::RecordId(0), affidavit::table::AttrId(0))),
        "line1\nline2"
    );
}

#[test]
fn utf8_bom_is_stripped_on_both_paths() {
    let (t, _) = assert_paths_agree("\u{feff}städte,n\n東京,1\n", 2);
    assert_eq!(t.schema().names().next(), Some("städte"));
    assert_eq!(t.len(), 1);
}

#[test]
fn field_spanning_chunk_boundary_streams_identically() {
    // A quoted field far larger than the chunker's read buffer, followed
    // by more records — the chunk boundary must never cut the field, at
    // any chunk size.
    let long = format!("start\n{}\"\"quote,end", "x".repeat(40_000));
    let text = format!("a,b\n\"{long}\",small\nplain,tail\n");
    for chunk_rows in [1usize, 2, 4096] {
        let (t, pool) = assert_paths_agree(&text, chunk_rows);
        assert_eq!(t.len(), 2);
        let got = pool.get(t.value(affidavit::table::RecordId(0), affidavit::table::AttrId(0)));
        assert_eq!(got.len(), long.len() - 1); // the "" escape collapses to "
        assert!(got.starts_with("start\nxxx"));
        assert!(got.ends_with("\"quote,end"));
    }
}

/// Arbitrary cell content, adversarial for CSV: quotes, commas, newlines.
fn cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9]{0,8}",
        "[a-z,\"\\n]{0,8}",
        "\".*\"",
        Just(String::new()),
        "[äöü東京a-z]{0,5}",
    ]
}

proptest! {
    #[test]
    fn write_read_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(cell(), 3), 0..20)
    ) {
        let mut pool = ValuePool::new();
        let mut table = Table::new(Schema::new(["col a", "col,b", "col\"c"]));
        for row in &rows {
            let syms: Vec<_> = row.iter().map(|v| pool.intern(v)).collect();
            table.push(Record::new(syms));
        }
        let mut buf = Vec::new();
        csv::write(&mut buf, &table, &pool, csv::CsvOptions::default()).unwrap();
        let text = String::from_utf8(buf).unwrap();

        let mut pool2 = ValuePool::new();
        let table2 = csv::read_str(&text, &mut pool2, csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(table2.len(), table.len());
        let names: Vec<&str> = table2.schema().names().collect();
        prop_assert_eq!(names, vec!["col a", "col,b", "col\"c"]);
        for (id, rec) in table.iter() {
            let rec2 = table2.record(id);
            for (i, sym) in rec.iter().enumerate() {
                prop_assert_eq!(pool.get(sym), pool2.get(rec2.get(i)));
            }
        }
        // And the streaming path agrees with the in-memory path on the
        // same adversarial bytes, even at a 1-record chunk size.
        assert_paths_agree(&text, 1);
    }

    /// Custom separators round-trip too.
    #[test]
    fn semicolon_roundtrip(rows in prop::collection::vec(prop::collection::vec("[a-z;]{0,6}", 2), 0..10)) {
        let opts = csv::CsvOptions { separator: b';' };
        let mut pool = ValuePool::new();
        let mut table = Table::new(Schema::new(["x", "y"]));
        for row in &rows {
            let syms: Vec<_> = row.iter().map(|v| pool.intern(v)).collect();
            table.push(Record::new(syms));
        }
        let mut buf = Vec::new();
        csv::write(&mut buf, &table, &pool, opts).unwrap();
        let mut pool2 = ValuePool::new();
        let table2 = csv::read_str(std::str::from_utf8(&buf).unwrap(), &mut pool2, opts).unwrap();
        prop_assert_eq!(table2.len(), table.len());
    }
}
