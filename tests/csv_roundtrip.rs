//! Property-based CSV round-trip: anything we write we must read back
//! verbatim, including separators, quotes, newlines and unicode.

use affidavit::table::{csv, Record, Schema, Table, ValuePool};
use proptest::prelude::*;

/// Arbitrary cell content, adversarial for CSV: quotes, commas, newlines.
fn cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9]{0,8}",
        "[a-z,\"\\n]{0,8}",
        "\".*\"",
        Just(String::new()),
        "[äöü東京a-z]{0,5}",
    ]
}

proptest! {
    #[test]
    fn write_read_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(cell(), 3), 0..20)
    ) {
        let mut pool = ValuePool::new();
        let mut table = Table::new(Schema::new(["col a", "col,b", "col\"c"]));
        for row in &rows {
            let syms: Vec<_> = row.iter().map(|v| pool.intern(v)).collect();
            table.push(Record::new(syms));
        }
        let mut buf = Vec::new();
        csv::write(&mut buf, &table, &pool, csv::CsvOptions::default()).unwrap();
        let text = String::from_utf8(buf).unwrap();

        let mut pool2 = ValuePool::new();
        let table2 = csv::read_str(&text, &mut pool2, csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(table2.len(), table.len());
        let names: Vec<&str> = table2.schema().names().collect();
        prop_assert_eq!(names, vec!["col a", "col,b", "col\"c"]);
        for (id, rec) in table.iter() {
            let rec2 = table2.record(id);
            for (i, &sym) in rec.values().iter().enumerate() {
                prop_assert_eq!(pool.get(sym), pool2.get(rec2.get(i)));
            }
        }
    }

    /// Custom separators round-trip too.
    #[test]
    fn semicolon_roundtrip(rows in prop::collection::vec(prop::collection::vec("[a-z;]{0,6}", 2), 0..10)) {
        let opts = csv::CsvOptions { separator: b';' };
        let mut pool = ValuePool::new();
        let mut table = Table::new(Schema::new(["x", "y"]));
        for row in &rows {
            let syms: Vec<_> = row.iter().map(|v| pool.intern(v)).collect();
            table.push(Record::new(syms));
        }
        let mut buf = Vec::new();
        csv::write(&mut buf, &table, &pool, opts).unwrap();
        let mut pool2 = ValuePool::new();
        let table2 = csv::read_str(std::str::from_utf8(&buf).unwrap(), &mut pool2, opts).unwrap();
        prop_assert_eq!(table2.len(), table.len());
    }
}
