//! Property-based tests for search-level components: the bounded level
//! queue (§4.6), value mappings, and the §5.1 generator's invariants.

use affidavit::core::queue::BoundedLevelQueue;
use affidavit::core::state::{Assignment, SearchState};
use affidavit::datagen::blueprint::{Blueprint, GenConfig};
use affidavit::datasets::{by_name, synth};
use affidavit::functions::{AttrFunction, ValueMap};
use affidavit::table::Sym;
use proptest::prelude::*;
use std::sync::Arc;

fn mk_state(id: usize, level: usize, cost: f64) -> SearchState {
    let mut assignments = vec![Assignment::Undecided; 10];
    for a in assignments.iter_mut().take(level) {
        *a = Assignment::Assigned(AttrFunction::Identity);
    }
    SearchState {
        assignments,
        blocking: Arc::new(affidavit::blocking::Blocking::default()),
        cost,
        id,
        parent: None,
    }
}

proptest! {
    /// The queue never holds more than its level capacities, polls in
    /// non-decreasing cost order *per level snapshot*, and never loses the
    /// global minimum to an eviction of a cheaper state.
    #[test]
    fn queue_discipline(
        inserts in prop::collection::vec((0usize..8, 0.0f64..100.0), 1..60),
        rho in 1usize..6,
    ) {
        let mut q = BoundedLevelQueue::new(rho);
        let mut accepted: Vec<(usize, f64)> = Vec::new();
        for (i, &(level, cost)) in inserts.iter().enumerate() {
            let st = mk_state(i, level, cost);
            if q.push(st) {
                accepted.push((level, cost));
            }
            // Level-capacity invariant is internal; externally: len() never
            // exceeds the sum of capacities over the touched levels.
            let cap_total: usize = (0..9).map(|l| q.capacity(l)).sum();
            prop_assert!(q.len() <= cap_total);
        }
        // Polling drains exactly len() states, each with a cost that is the
        // minimum of the remaining queue at poll time.
        let mut last_min: Option<f64> = None;
        let mut drained = 0;
        while let Some(next_min) = q.min_cost() {
            let polled = q.poll().expect("min exists implies non-empty");
            prop_assert!((polled.cost - next_min).abs() < 1e-12);
            let _ = last_min.replace(polled.cost);
            drained += 1;
        }
        prop_assert!(q.poll().is_none());
        prop_assert!(drained <= accepted.len());
    }

    /// Value maps: applying entries hits the stored outputs, everything
    /// else is the identity, and ψ = 2·len.
    #[test]
    fn value_map_laws(pairs in prop::collection::vec((0u32..50, 0u32..50), 0..30), probe in 0u32..60) {
        let map = ValueMap::from_pairs(pairs.iter().map(|&(a, b)| (Sym(a), Sym(b))));
        prop_assert_eq!(map.psi(), 2 * map.len() as u64);
        for &(k, v) in map.entries() {
            prop_assert_eq!(map.apply(k), v);
            prop_assert!(k != v, "identity entries must have been dropped");
        }
        let p = Sym(probe);
        if map.entries().iter().all(|&(k, _)| k != p) {
            prop_assert_eq!(map.apply(p), p);
        }
    }

    /// Every generated instance — any (η, τ, seed) — carries a valid
    /// reference explanation with equal-size snapshots and Δ = 0.
    #[test]
    fn generated_instances_always_valid(
        eta in 0.1f64..0.7,
        tau in 0.1f64..0.9,
        seed in 0u64..20,
    ) {
        let spec = by_name("iris").unwrap();
        let (base, pool) = synth::generate(&spec, seed);
        let bp = Blueprint::new(base, pool, GenConfig::new(eta, tau, seed));
        let mut gen = bp.materialize_full();
        prop_assert_eq!(gen.instance.source.len(), gen.instance.target.len());
        prop_assert_eq!(gen.instance.delta(), 0);
        let check = gen.reference.validate(&mut gen.instance);
        prop_assert!(check.is_ok(), "{:?}", check);
        // The at-least-one-id rule.
        let non_pk = gen.instance.arity() - 1;
        prop_assert!(
            gen.reference.functions[..non_pk]
                .iter()
                .any(AttrFunction::is_identity),
            "no unchanged attribute sampled"
        );
    }
}
